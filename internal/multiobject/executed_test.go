package multiobject

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"objalloc/internal/cost"
	"objalloc/internal/dom"
	"objalloc/internal/model"
	"objalloc/internal/sim"
)

func openExecuted(t *testing.T, protocol sim.Protocol) *ExecutedDB {
	t.Helper()
	db, err := OpenExecuted(ExecutedConfig{N: 5, T: 2, Protocol: protocol})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestOpenExecutedValidation(t *testing.T) {
	if _, err := OpenExecuted(ExecutedConfig{N: 0, T: 2}); err == nil {
		t.Error("N = 0 accepted")
	}
	if _, err := OpenExecuted(ExecutedConfig{N: 3, T: 0}); err == nil {
		t.Error("T = 0 accepted")
	}
}

func TestExecutedReadYourWrites(t *testing.T) {
	db := openExecuted(t, sim.DA)
	v, err := db.Write("doc", 3, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Read("doc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != v.Seq || string(got.Data) != "hello" {
		t.Errorf("read = %+v", got)
	}
	if names := db.Objects(); len(names) != 1 || names[0] != "doc" {
		t.Errorf("objects = %v", names)
	}
}

func TestExecutedObjectsIsolated(t *testing.T) {
	db := openExecuted(t, sim.DA)
	if _, err := db.Read("a", 4); err != nil { // 4 joins a's scheme
		t.Fatal(err)
	}
	sa, err := db.SchemeOf("a")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := db.SchemeOf("b") // freshly created, untouched
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Contains(4) || sb.Contains(4) {
		t.Errorf("schemes a=%v b=%v", sa, sb)
	}
}

// The analytic lift (DB) and the executed database (ExecutedDB) produce
// identical integer accounting for the same per-object request sequences.
func TestExecutedMatchesAnalyticLift(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	names := []string{"x", "y", "z"}

	analytic, err := Open(Config{Factory: dom.DynamicFactory, T: 2, Model: cost.SC(0.3, 1.2)})
	if err != nil {
		t.Fatal(err)
	}
	executed := openExecuted(t, sim.DA)

	for i := 0; i < 400; i++ {
		name := names[rng.Intn(len(names))]
		p := model.ProcessorID(rng.Intn(5))
		if rng.Float64() < 0.3 {
			if _, err := analytic.Write(name, p); err != nil {
				t.Fatal(err)
			}
			if _, err := executed.Write(name, p, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := analytic.Read(name, p); err != nil {
				t.Fatal(err)
			}
			if _, err := executed.Read(name, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := executed.TotalCounts(), analytic.TotalCounts(); got != want {
		t.Errorf("executed %v != analytic %v", got, want)
	}
}

// Operations on different objects proceed concurrently without interference.
func TestExecutedConcurrentObjects(t *testing.T) {
	db := openExecuted(t, sim.DA)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("obj-%d", g)
			for i := 0; i < 20; i++ {
				if _, err := db.Write(name, model.ProcessorID(i%5), []byte{byte(i)}); err != nil {
					errs[g] = err
					return
				}
				v, err := db.Read(name, model.ProcessorID((i+1)%5))
				if err != nil {
					errs[g] = err
					return
				}
				if v.Data[0] != byte(i) {
					errs[g] = fmt.Errorf("stale read on %s: %v", name, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
	if len(db.Objects()) != 8 {
		t.Errorf("objects = %v", db.Objects())
	}
}

func TestExecutedClosedRejectsOps(t *testing.T) {
	db, err := OpenExecuted(ExecutedConfig{N: 3, T: 2, Protocol: sim.SA})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	db.Close() // idempotent
	if _, err := db.Read("a", 0); err == nil {
		t.Error("read after close accepted")
	}
}

func TestExecutedPlacement(t *testing.T) {
	db, err := OpenExecuted(ExecutedConfig{
		N: 6, T: 2, Protocol: sim.SA,
		Placement: func(name string) model.Set {
			if name == "east" {
				return model.NewSet(4, 5)
			}
			return model.NewSet(0, 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	se, err := db.SchemeOf("east")
	if err != nil {
		t.Fatal(err)
	}
	if se != model.NewSet(4, 5) {
		t.Errorf("east scheme = %v", se)
	}
}
