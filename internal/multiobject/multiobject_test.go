package multiobject

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"objalloc/internal/cost"
	"objalloc/internal/dom"
	"objalloc/internal/model"
	"objalloc/internal/workload"
)

func openDB(t *testing.T, f dom.Factory) *DB {
	t.Helper()
	db, err := Open(Config{Factory: f, T: 2, Model: cost.SC(0.3, 1.2)})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Factory: nil, T: 2, Model: cost.SC(0.3, 1.2)}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := Open(Config{Factory: dom.StaticFactory, T: 0, Model: cost.SC(0.3, 1.2)}); err == nil {
		t.Error("T = 0 accepted")
	}
	if _, err := Open(Config{Factory: dom.StaticFactory, T: 2, Model: cost.SC(2, 1)}); err == nil {
		t.Error("invalid cost model accepted")
	}
}

func TestObjectsAreIndependent(t *testing.T) {
	db := openDB(t, dom.DynamicFactory)
	// Object "a": reader 5 joins its scheme. Object "b" is untouched by
	// that read.
	if _, err := db.Read("a", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Write("b", 0); err != nil {
		t.Fatal(err)
	}
	sa, ok := db.StatsOf("a")
	if !ok || !sa.Scheme.Contains(5) {
		t.Errorf("a stats = %+v ok=%v", sa, ok)
	}
	sb, ok := db.StatsOf("b")
	if !ok || sb.Scheme.Contains(5) {
		t.Errorf("b stats = %+v ok=%v", sb, ok)
	}
	if db.Objects() != 2 {
		t.Errorf("objects = %d", db.Objects())
	}
}

func TestTotalIsSumOfPerObject(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := openDB(t, dom.DynamicFactory)
	names := []string{"x", "y", "z"}
	for i := 0; i < 300; i++ {
		name := names[rng.Intn(len(names))]
		p := model.ProcessorID(rng.Intn(6))
		var err error
		if rng.Float64() < 0.3 {
			_, err = db.Write(name, p)
		} else {
			_, err = db.Read(name, p)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	var sum cost.Counts
	var sumCost float64
	for _, st := range db.AllStats() {
		sum = sum.Add(st.Counts)
		sumCost += st.Cost
	}
	if sum != db.TotalCounts() {
		t.Errorf("sum %v != total %v", sum, db.TotalCounts())
	}
	if math.Abs(sumCost-db.TotalCost()) > 1e-9 {
		t.Errorf("sum cost %g != total %g", sumCost, db.TotalCost())
	}
}

// The lift is exact: running one object through the database equals running
// the same schedule through the single-object machinery.
func TestMatchesSingleObjectAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sched := workload.Uniform(rng, 6, 120, 0.3)
	m := cost.SC(0.3, 1.2)

	db, err := Open(Config{Factory: dom.DynamicFactory, T: 2, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	var dbCost float64
	for _, q := range sched {
		c, err := db.Apply("obj", q)
		if err != nil {
			t.Fatal(err)
		}
		dbCost += c
	}

	las, err := dom.RunFactory(dom.DynamicFactory, model.NewSet(0, 1), 2, sched)
	if err != nil {
		t.Fatal(err)
	}
	want := cost.ScheduleCost(m, las, model.NewSet(0, 1))
	if math.Abs(dbCost-want) > 1e-9 {
		t.Errorf("db cost %g != single-object cost %g", dbCost, want)
	}
	st, _ := db.StatsOf("obj")
	if st.Requests != len(sched) {
		t.Errorf("requests = %d", st.Requests)
	}
}

func TestPlacementPolicy(t *testing.T) {
	// Hash-like placement: object "even" lives at {0,1}, "odd" at {2,3}.
	cfg := Config{
		Factory: dom.StaticFactory, T: 2, Model: cost.SC(0.3, 1.2),
		Placement: func(name string) model.Set {
			if name == "even" {
				return model.NewSet(0, 1)
			}
			return model.NewSet(2, 3)
		},
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Read("even", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Read("odd", 0); err != nil {
		t.Fatal(err)
	}
	se, _ := db.StatsOf("even")
	so, _ := db.StatsOf("odd")
	if se.Scheme != model.NewSet(0, 1) || so.Scheme != model.NewSet(2, 3) {
		t.Errorf("schemes: even %v odd %v", se.Scheme, so.Scheme)
	}
	// Local read at 0 for "even" costs 1 I/O; remote read for "odd" costs
	// cc + 1 + cd.
	if se.Cost != 1 {
		t.Errorf("even cost = %g", se.Cost)
	}
	if math.Abs(so.Cost-(0.3+1+1.2)) > 1e-9 {
		t.Errorf("odd cost = %g", so.Cost)
	}
}

func TestStatsOfMissingObject(t *testing.T) {
	db := openDB(t, dom.StaticFactory)
	if _, ok := db.StatsOf("ghost"); ok {
		t.Error("stats for missing object")
	}
}

func TestAllStatsSorted(t *testing.T) {
	db := openDB(t, dom.StaticFactory)
	for _, name := range []string{"zeta", "alpha", "mu"} {
		if _, err := db.Read(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	all := db.AllStats()
	if len(all) != 3 || all[0].Name != "alpha" || all[2].Name != "zeta" {
		t.Errorf("AllStats order: %v", func() []string {
			var names []string
			for _, s := range all {
				names = append(names, s.Name)
			}
			return names
		}())
	}
}

func TestManyObjectsScale(t *testing.T) {
	db := openDB(t, dom.DynamicFactory)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("obj-%d", i)
		if _, err := db.Write(name, model.ProcessorID(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Objects() != 1000 {
		t.Errorf("objects = %d", db.Objects())
	}
	if db.TotalCounts().IO == 0 {
		t.Error("no IO accounted")
	}
}
