package adaptive

import (
	"context"
	"fmt"
	"math"

	"objalloc/internal/adversary"
	"objalloc/internal/cost"
	"objalloc/internal/dom"
	"objalloc/internal/engine"
	"objalloc/internal/model"
	"objalloc/internal/obs"
	"objalloc/internal/opt"
	"objalloc/internal/workload"
)

// Case is one named schedule of a regret battery.
type Case struct {
	Name  string
	Sched model.Schedule
}

// RegretSpec bundles everything a regret measurement needs: the cost
// model, the controller configuration, the system shape, the schedule
// battery, and the execution options of the parallel engine.
type RegretSpec struct {
	// Model prices every run; it also drives the controller's region
	// test.
	Model cost.Model
	// Spec configures the adaptive controller under test. The zero value
	// selects the defaults.
	Spec Spec
	// N is the number of processors and T the availability threshold of
	// the battery's schedules.
	N, T int
	// Initial is the initial allocation scheme; empty selects the first
	// T processors.
	Initial model.Set
	// Cases is the schedule battery. Empty selects DefaultBattery(N, T,
	// Seed) — adversarial mix-flips plus seeded stochastic workloads.
	Cases []Case
	// Seed seeds the default battery's stochastic schedules.
	Seed int64
	// Parallelism bounds the number of cases measured concurrently; zero
	// or negative selects engine.DefaultParallelism. Results are
	// identical for every value.
	Parallelism int
	// Obs attaches the instrumentation layer: the engine reports task
	// progress, and after the measurement one "regret" event per case is
	// emitted in battery order. Nil disables instrumentation.
	Obs *obs.Obs
}

// Normalize validates the spec and resolves defaults in place. It is the
// single place RegretSpec validation happens; Regret calls it first.
func (spec *RegretSpec) Normalize() error {
	if err := spec.Model.Validate(); err != nil {
		return err
	}
	if err := spec.Spec.Normalize(); err != nil {
		return err
	}
	if spec.N < 1 || spec.T < 1 {
		return fmt.Errorf("adaptive: regret needs N >= 1 and T >= 1, got N=%d T=%d", spec.N, spec.T)
	}
	if spec.T > spec.N {
		return fmt.Errorf("adaptive: regret T (%d) exceeds N (%d)", spec.T, spec.N)
	}
	if spec.Initial.IsEmpty() {
		for k := 0; k < spec.T; k++ {
			spec.Initial = spec.Initial.Add(model.ProcessorID(k))
		}
	}
	if spec.Initial.Size() < spec.T {
		return fmt.Errorf("adaptive: regret initial scheme %v smaller than T=%d", spec.Initial, spec.T)
	}
	if len(spec.Cases) == 0 {
		spec.Cases = DefaultBattery(spec.N, spec.T, spec.Seed)
	}
	return nil
}

// DefaultBattery builds the standard regret battery for an n-processor
// system with availability t: the adversarial families each protocol is
// worst on, the mix-flip schedule that punishes any fixed choice, and
// seeded stochastic workloads. Deterministic for a given seed.
func DefaultBattery(n, t int, seed int64) []Case {
	outsider := model.ProcessorID(n - 1)
	writer := model.ProcessorID(0)
	cases := []Case{
		{Name: "mixflip", Sched: adversary.MixFlip(outsider, writer, 60, 4)},
		{Name: "sa-punisher", Sched: adversary.SAPunisher(outsider, 120)},
		{Name: "pingpong", Sched: adversary.PingPong(writer, outsider, 60)},
	}
	for i, ws := range []string{
		fmt.Sprintf("uniform:n=%d,len=240,pwrite=0.3", n),
		fmt.Sprintf("hotspot:n=%d,len=240,pwrite=0.1", n),
		fmt.Sprintf("uniform:n=%d,len=240,pwrite=0.7", n),
	} {
		sched, err := workload.FromSpec(engine.TaskRNG(seed, i), ws)
		if err != nil {
			// The specs above are constants; failure is a programming
			// error.
			panic(err)
		}
		cases = append(cases, Case{Name: ws, Sched: sched})
	}
	return cases
}

// RegretPoint is the measurement of one battery case: the total
// paper-model cost of the adaptive controller (including its transition
// charges) against pure SA, pure DA and the offline optimum.
type RegretPoint struct {
	// Case names the schedule.
	Case string
	// Requests is the schedule length.
	Requests int
	// Adaptive, SA, DA and Opt are total costs. Opt is the exact offline
	// optimum when Exact is true, otherwise the beam-search upper bound
	// (instance too large for the exact solver).
	Adaptive, SA, DA, Opt float64
	Exact                 bool
	// Switches is how many protocol transitions the controller performed.
	Switches int
	// VsOpt is Adaptive/Opt — the measured regret ratio. VsBestFixed is
	// Adaptive/min(SA, DA): below 1 means the controller beat both fixed
	// protocols on this schedule.
	VsOpt, VsBestFixed float64
}

// Regret measures the adaptive controller against pure SA, pure DA and
// the offline optimum on every case of the battery.
//
// Cases are independent, so they are evaluated on the engine's bounded
// worker pool; results are assembled in battery order and are
// byte-identical to a serial run. Cancelling the context aborts the
// remaining cases and returns ctx.Err().
func Regret(ctx context.Context, spec RegretSpec) ([]RegretPoint, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	points, err := engine.CollectObserved(ctx, len(spec.Cases), spec.Parallelism, spec.Obs.Hook(), func(ctx context.Context, i int) (RegretPoint, error) {
		cs := spec.Cases[i]
		p := RegretPoint{Case: cs.Name, Requests: len(cs.Sched)}

		ctrl, err := New(spec.Model, spec.Spec, spec.Initial, spec.T)
		if err != nil {
			return p, fmt.Errorf("adaptive: regret case %q: %w", cs.Name, err)
		}
		p.Adaptive, _, p.Switches = RunCost(spec.Model, ctrl, cs.Sched)

		for _, fixed := range []struct {
			f    dom.Factory
			cost *float64
		}{{dom.StaticFactory, &p.SA}, {dom.DynamicFactory, &p.DA}} {
			alg, err := fixed.f(spec.Initial, spec.T)
			if err != nil {
				return p, fmt.Errorf("adaptive: regret case %q: %w", cs.Name, err)
			}
			*fixed.cost, _, _ = RunCost(spec.Model, alg, cs.Sched)
		}

		p.Opt, err = opt.SolveCostContext(ctx, spec.Model, cs.Sched, spec.Initial, spec.T)
		if err == nil {
			p.Exact = true
		} else {
			if ctx.Err() != nil {
				return p, ctx.Err()
			}
			// Instance too large for the exact solver: fall back to the
			// beam upper bound so the ratio stays meaningful (it
			// under-estimates the regret).
			beam, berr := opt.BeamContext(ctx, spec.Model, cs.Sched, spec.Initial, spec.T, 32)
			if berr != nil {
				return p, fmt.Errorf("adaptive: regret case %q: exact: %v; beam: %w", cs.Name, err, berr)
			}
			p.Opt = beam.Cost
		}
		if p.Opt > 0 {
			p.VsOpt = p.Adaptive / p.Opt
		} else {
			p.VsOpt = math.NaN()
		}
		if best := math.Min(p.SA, p.DA); best > 0 {
			p.VsBestFixed = p.Adaptive / best
		} else {
			p.VsBestFixed = math.NaN()
		}
		return p, nil
	})
	if err != nil {
		return points, err
	}
	emitRegret(spec.Obs, points)
	return points, nil
}

// emitRegret renders the finished measurement into the instrumentation
// layer: one "regret" event per case, in battery order, plus registry
// totals. It runs single-threaded after Collect has assembled the points,
// so the emission is deterministic regardless of how the cases were
// scheduled.
func emitRegret(o *obs.Obs, points []RegretPoint) {
	if !o.Enabled() {
		return
	}
	for _, p := range points {
		o.Emit(obs.Event{Name: "regret", Attrs: []obs.Attr{
			obs.String("case", p.Case),
			obs.Int("requests", p.Requests),
			obs.Float("adaptive", p.Adaptive),
			obs.Float("sa", p.SA),
			obs.Float("da", p.DA),
			obs.Float("opt", p.Opt),
			obs.Bool("exact", p.Exact),
			obs.Int("switches", p.Switches),
			obs.Float("vs_opt", p.VsOpt),
			obs.Float("vs_best_fixed", p.VsBestFixed),
		}})
		o.Counter("regret.cases").Inc()
		o.Histogram("regret.vs_opt_milli", 1000, 1100, 1250, 1500, 2000, 3000).Observe(int64(p.VsOpt * 1000))
		if p.VsBestFixed < 1 {
			o.Counter("regret.beats_both_fixed").Inc()
		}
	}
}
