package adaptive

import (
	"fmt"
	"math"

	"objalloc/internal/competitive"
	"objalloc/internal/cost"
	"objalloc/internal/dom"
	"objalloc/internal/model"
)

// Controller is the online adaptive allocation algorithm. It delegates
// every request to the protocol currently in charge (a fresh dom.Static or
// dom.Dynamic instance) and, after servicing it, re-evaluates the sliding
// window; a switch takes effect before the next request and is billed via
// cost.TransitionCounts.
//
// Controller implements dom.Algorithm, dom.Transitioner and
// dom.MixReporter. Like every Algorithm it is single-use and not safe for
// concurrent use; the server gives each object its own instance.
type Controller struct {
	spec    Spec
	model   cost.Model
	initial model.Set
	t       int

	inner  dom.Algorithm
	pinned bool
	steps  int

	// Sliding window: a ring of the last spec.Window accesses plus the
	// decayed read/write mass per processor. With Decay = 0 the masses
	// are plain counts of the ring's contents.
	ring      []access
	head      int
	readMass  map[model.ProcessorID]float64
	writeMass map[model.ProcessorID]float64
	departing float64 // weight of the oldest entry when it leaves: (1−decay)^window

	streak int
	trans  []dom.Transition
}

type access struct {
	read bool
	p    model.ProcessorID
}

// New creates a Controller for one object. The cost model decides the
// region test and prices the window estimates; initial is the object's
// initial allocation scheme (SA's fixed Q, DA's F ∪ {p}); t is the
// availability threshold. The spec is normalized here, so the zero Spec is
// valid.
func New(m cost.Model, spec Spec, initial model.Set, t int) (*Controller, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{spec: spec, model: m, initial: initial, t: t}

	region := competitive.RegionUnknown
	if !spec.IgnoreRegion {
		region = analyticRegion(m)
	}
	start := spec.Start
	if start == "auto" {
		switch region {
		case competitive.RegionSASuperior:
			start = "sa"
		default:
			// DA wherever the bounds do not hand the point to SA: the
			// paper's recommendation (DA is competitive, SA is not in
			// general).
			start = "da"
		}
	}
	// Pin when the spec disables switching or the paper's bounds already
	// decide the point; a pinned controller is the pure protocol.
	c.pinned = spec.Pinned() ||
		(region == competitive.RegionSASuperior && start == "sa") ||
		(region == competitive.RegionDASuperior && start == "da")

	var err error
	if c.inner, err = c.protocol(start); err != nil {
		return nil, err
	}
	if !c.pinned {
		c.ring = make([]access, 0, spec.Window)
		c.readMass = make(map[model.ProcessorID]float64)
		c.writeMass = make(map[model.ProcessorID]float64)
		c.departing = math.Pow(1-spec.Decay, float64(spec.Window))
	}
	return c, nil
}

// Factory returns a dom.Factory that creates a Controller per run, the
// form the multi-object directory and the server consume.
func Factory(m cost.Model, spec Spec) dom.Factory {
	return func(initial model.Set, t int) (dom.Algorithm, error) {
		return New(m, spec, initial, t)
	}
}

// analyticRegion classifies the cost model with the paper's figure 1/2
// bounds, normalizing prices per I/O for the stationary test (the figures
// assume cio = 1).
func analyticRegion(m cost.Model) competitive.Region {
	if m.IsMobile() {
		return competitive.AnalyticRegionMC(m.CC, m.CD)
	}
	return competitive.AnalyticRegionSC(m.CC/m.CIO, m.CD/m.CIO)
}

// protocol creates a fresh instance of the named protocol starting from
// the controller's canonical initial scheme.
func (c *Controller) protocol(name string) (dom.Algorithm, error) {
	switch name {
	case "sa":
		return dom.NewStatic(c.initial, c.t)
	case "da":
		return dom.NewDynamic(c.initial, c.t)
	default:
		return nil, fmt.Errorf("adaptive: unknown protocol %q", name)
	}
}

// Name implements dom.Algorithm; it names the protocol currently in
// charge, e.g. "ADAPT(DA)".
func (c *Controller) Name() string { return "ADAPT(" + c.inner.Name() + ")" }

// Scheme implements dom.Algorithm.
func (c *Controller) Scheme() model.Set { return c.inner.Scheme() }

// Transitions implements dom.Transitioner.
func (c *Controller) Transitions() []dom.Transition { return c.trans }

// Protocol names the protocol currently in force ("SA" or "DA") — the
// value request tracing stamps on spans so a traced adaptive run shows
// which protocol actually serviced each request.
func (c *Controller) Protocol() string { return c.inner.Name() }

// WindowStat implements dom.MixReporter.
func (c *Controller) WindowStat() dom.WindowStat {
	st := dom.WindowStat{Protocol: c.Protocol(), Adapting: !c.pinned}
	for _, v := range c.readMass {
		st.Reads += v
	}
	for _, v := range c.writeMass {
		st.Writes += v
	}
	return st
}

// Step implements dom.Algorithm: the current protocol services the request
// unchanged, then the controller updates the window and, when the estimate
// has favored the other protocol for Hysteresis consecutive requests over
// a full window, switches. The switch happens after the step, so the
// scheme a caller captured before Step prices this step correctly; the
// transition's own counts are surfaced via Transitions.
func (c *Controller) Step(q model.Request) model.Step {
	st := c.inner.Step(q)
	c.steps++
	if c.pinned {
		return st
	}
	c.observe(q)
	c.maybeSwitch()
	return st
}

// observe pushes the request into the sliding window, decaying what is
// already there and expiring the oldest entry once the window is full.
func (c *Controller) observe(q model.Request) {
	if c.spec.Decay > 0 {
		keep := 1 - c.spec.Decay
		for p, v := range c.readMass {
			c.readMass[p] = v * keep
		}
		for p, v := range c.writeMass {
			c.writeMass[p] = v * keep
		}
	}
	if len(c.ring) == c.spec.Window {
		old := c.ring[c.head]
		if old.read {
			c.readMass[old.p] -= c.departing
		} else {
			c.writeMass[old.p] -= c.departing
		}
		c.ring[c.head] = access{read: q.IsRead(), p: q.Processor}
		c.head = (c.head + 1) % c.spec.Window
	} else {
		c.ring = append(c.ring, access{read: q.IsRead(), p: q.Processor})
	}
	if q.IsRead() {
		c.readMass[q.Processor]++
	} else {
		c.writeMass[q.Processor]++
	}
}

// maybeSwitch applies the hysteresis rule and performs the protocol
// switch, recording the transition with its paper-model cost.
func (c *Controller) maybeSwitch() {
	if len(c.ring) < c.spec.Window {
		// Not enough evidence yet: the estimates only become comparable
		// across time once the window is full.
		return
	}
	sa, da := c.Estimates()
	var better string
	switch {
	case sa < da:
		better = "SA"
	case da < sa:
		better = "DA"
	default:
		better = c.inner.Name()
	}
	if better == c.inner.Name() {
		c.streak = 0
		return
	}
	c.streak++
	if c.streak < c.spec.Hysteresis {
		return
	}
	c.streak = 0
	from := c.inner.Scheme()
	fromName := c.inner.Name()
	next, err := c.protocol(map[string]string{"SA": "sa", "DA": "da"}[better])
	if err != nil {
		// Both protocols were constructible at New time; a failure here
		// is a programming error.
		panic(err)
	}
	c.inner = next
	c.trans = append(c.trans, dom.Transition{
		Step:   c.steps,
		From:   fromName,
		To:     better,
		Counts: cost.TransitionCounts(from, next.Scheme()),
	})
}

// Estimates prices the current window under both protocols with the exact
// §3.2 per-request charges and returns (sa, da). SA is memoryless — every
// window entry is priced against the fixed scheme Q — while DA's price
// uses the saving-read accounting: an outsider's reads cost one
// saving-read (request + transmission + two I/Os, plus the amortized
// invalidate a later write sends it) per write-separated run, and local
// I/O otherwise. Exported for tests and the regret harness's diagnostics.
func (c *Controller) Estimates() (sa, da float64) {
	m := c.model
	home := c.initial
	q := float64(home.Size())
	t := float64(c.t)

	var writes float64
	for _, w := range c.writeMass {
		writes += w
	}
	for p, r := range c.readMass {
		if r <= 0 {
			continue
		}
		if home.Contains(p) {
			// Local read under both protocols: one input.
			sa += r * m.CIO
			da += r * m.CIO
			continue
		}
		// SA: every outsider read is remote — request, transmission,
		// input at the server.
		sa += r * (m.CC + m.CD + m.CIO)
		// DA: the first read after each invalidating write is a
		// saving-read (request + transmission + input + the save
		// output), and the copy costs one invalidate when the next
		// write arrives; the remaining reads are local inputs.
		saving := math.Min(r, writes+1)
		da += saving*(2*m.CC+m.CD+2*m.CIO) + (r-saving)*m.CIO
	}
	for p, w := range c.writeMass {
		if w <= 0 {
			continue
		}
		// SA: write executes at Q (read-one-write-all).
		if home.Contains(p) {
			sa += w * ((q-1)*m.CD + q*m.CIO)
		} else {
			sa += w * (q*m.CD + q*m.CIO)
		}
		// DA: write executes at F ∪ {p} or F ∪ {writer}, size t; an
		// outsider write additionally invalidates the designated
		// processor it evicts.
		if home.Contains(p) {
			da += w * ((t-1)*m.CD + t*m.CIO)
		} else {
			da += w * ((t-1)*m.CD + t*m.CIO + m.CC)
		}
	}
	return sa, da
}

// RunCost executes a schedule through an algorithm and returns the total
// paper-model cost including protocol-transition charges, the integer
// accounting, and the number of switches. It is the pricing loop the
// regret harness uses; cost.ScheduleCost cannot be used for a
// dom.Transitioner because transitions move the allocation scheme between
// steps.
func RunCost(m cost.Model, alg dom.Algorithm, sched model.Schedule) (total float64, counts cost.Counts, switches int) {
	tr, _ := alg.(dom.Transitioner)
	seen := 0
	for _, q := range sched {
		scheme := alg.Scheme()
		st := alg.Step(q)
		counts = counts.Add(cost.StepCounts(st, scheme))
		if tr != nil {
			ts := tr.Transitions()
			for ; seen < len(ts); seen++ {
				counts = counts.Add(ts[seen].Counts)
				switches++
			}
		}
	}
	return counts.Price(m), counts, switches
}
