package adaptive

import (
	"testing"
)

// FuzzParseAdaptiveSpec checks that ParseSpec never panics and that every
// accepted spec is canonical: normalization is idempotent, the canonical
// rendering re-parses to the identical Spec, and the parsed values are
// inside their documented domains.
func FuzzParseAdaptiveSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"adaptive",
		"adaptive:window=8,hysteresis=2",
		"adaptive:window=inf",
		"adaptive:hysteresis=inf,start=sa",
		"adaptive:decay=0.25,start=da,region=off",
		"window=64,hysteresis=4,decay=0,start=auto,region=on",
		"adaptive:window=1,hysteresis=1,decay=0.999",
		"adaptive:color=red",
		"bogus:window=8",
		"adaptive:decay=1e-300",
		"adaptive:window=9999999999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		if (s.Window < 1 && s.Window != Disabled) || (s.Hysteresis < 1 && s.Hysteresis != Disabled) {
			t.Fatalf("ParseSpec(%q) accepted out-of-domain counts: %+v", in, s)
		}
		if s.Window > maxWindow {
			t.Fatalf("ParseSpec(%q) accepted oversized window: %+v", in, s)
		}
		if !(s.Decay >= 0 && s.Decay < 1) {
			t.Fatalf("ParseSpec(%q) accepted out-of-domain decay: %+v", in, s)
		}
		switch s.Start {
		case "sa", "da", "auto":
		default:
			t.Fatalf("ParseSpec(%q) accepted unknown start: %+v", in, s)
		}
		norm := s
		if err := norm.Normalize(); err != nil {
			t.Fatalf("ParseSpec(%q) returned un-normalizable spec %+v: %v", in, s, err)
		}
		if norm != s {
			t.Fatalf("ParseSpec(%q) not normalized: %+v vs %+v", in, s, norm)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical %q of ParseSpec(%q) does not re-parse: %v", s.String(), in, err)
		}
		if back != s {
			t.Fatalf("canonical round trip of %q: %+v != %+v", in, back, s)
		}
	})
}
