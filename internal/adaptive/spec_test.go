package adaptive

import (
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	for _, in := range []string{"", "adaptive", "adaptive:", "ADAPTIVE"} {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		want := Spec{Window: DefaultWindow, Hysteresis: DefaultHysteresis, Start: "auto"}
		if s != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", in, s, want)
		}
	}
}

func TestParseSpecFields(t *testing.T) {
	s, err := ParseSpec("adaptive:window=8,hysteresis=2,decay=0.1,start=SA,region=off")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Window: 8, Hysteresis: 2, Decay: 0.1, Start: "sa", IgnoreRegion: true}
	if s != want {
		t.Fatalf("got %+v, want %+v", s, want)
	}
	// The prefix is optional when there is no colon... but key=value
	// pairs contain no colon either, so bare bodies parse too.
	s2, err := ParseSpec("window=8,hysteresis=2,decay=0.1,start=sa,region=off")
	if err != nil {
		t.Fatal(err)
	}
	if s2 != want {
		t.Fatalf("bare body: got %+v, want %+v", s2, want)
	}
}

func TestParseSpecInf(t *testing.T) {
	s, err := ParseSpec("adaptive:window=inf,hysteresis=INF")
	if err != nil {
		t.Fatal(err)
	}
	if s.Window != Disabled || s.Hysteresis != Disabled || !s.Pinned() {
		t.Fatalf("inf spec not pinned: %+v", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"bogus:window=8",             // unknown controller name
		"adaptive:window=0",          // zero window is not a valid literal
		"adaptive:window=-3",         // negative literal
		"adaptive:window=x",          // non-numeric
		"adaptive:decay=1",           // decay must be < 1
		"adaptive:decay=-0.1",        // negative decay
		"adaptive:decay=NaN",         // NaN decay
		"adaptive:start=quorum",      // unknown protocol
		"adaptive:region=maybe",      // bad region toggle
		"adaptive:color=red",         // unknown key
		"adaptive:window",            // missing value
		"adaptive:=8",                // missing key
		"adaptive:window=8,window=9", // duplicate key
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q): expected error", in)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{},
		{Window: 8, Hysteresis: 2},
		{Window: Disabled},
		{Hysteresis: Disabled, Start: "sa"},
		{Decay: 0.25, Start: "da", IgnoreRegion: true},
	} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if back != s {
			t.Errorf("round trip %q: got %+v, want %+v", s.String(), back, s)
		}
	}
}

func TestNormalizeRejectsHugeWindow(t *testing.T) {
	s := Spec{Window: maxWindow + 1}
	if err := s.Normalize(); err == nil {
		t.Fatal("expected error for oversized window")
	}
	if _, err := ParseSpec("adaptive:window=99999999"); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("expected window error, got %v", err)
	}
}
