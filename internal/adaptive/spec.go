// Package adaptive implements an online allocation controller that switches
// an object between the paper's two protocols — read-one-write-all Static
// Allocation (SA, §4.2.1) and Dynamic Allocation (DA, §4.2.2) — while the
// object is being served.
//
// Neither protocol dominates: the winner depends on where the cost model
// lands in the (cd, cc) plane of figures 1 and 2 and on the read/write mix
// of the workload. The controller first applies the paper's analytic region
// test; when the bounds decide the point, the winning protocol is pinned
// and the controller is indistinguishable from it. In the unknown region it
// keeps a sliding-window estimate of the object's access pattern, prices
// the window under both protocols with the exact §3.2 charge formulas, and
// switches when the estimate has favored the other protocol for a
// hysteresis run of consecutive requests. Every switch is billed through
// cost.TransitionCounts — replica installs and invalidations at paper
// prices — so adaptive cost is directly comparable to pure SA, pure DA and
// the offline optimum. The regret harness in this package measures exactly
// those ratios.
package adaptive

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Defaults used when the corresponding Spec field is zero.
const (
	// DefaultWindow is the sliding-window length in requests.
	DefaultWindow = 64
	// DefaultHysteresis is the number of consecutive requests the window
	// estimate must favor the other protocol before the controller
	// switches.
	DefaultHysteresis = 4
)

// Disabled is the sentinel for "never": a Spec with Window or Hysteresis
// set to Disabled pins the controller to its starting protocol. The spec
// string spells it "inf".
const Disabled = -1

// Spec configures one adaptive controller. The zero value selects the
// defaults (window 64, hysteresis 4, no decay, automatic start, region
// test enabled); Normalize resolves them.
type Spec struct {
	// Window is the sliding-window length in requests. Zero selects
	// DefaultWindow; Disabled (spec string "inf") turns adaptation off
	// entirely, pinning the starting protocol.
	Window int
	// Hysteresis is how many consecutive requests the window estimate
	// must favor the other protocol before a switch. Zero selects
	// DefaultHysteresis; Disabled ("inf") means never switch.
	Hysteresis int
	// Decay in [0, 1) exponentially discounts older window entries: after
	// each request every entry's weight is multiplied by 1−Decay, so a
	// departing entry weighs (1−Decay)^Window. Zero keeps plain counts.
	Decay float64
	// Start names the protocol the controller begins with: "sa", "da",
	// or "auto" (the region test's winner when decisive, otherwise DA —
	// the paper's recommendation wherever it is competitive). Empty means
	// "auto".
	Start string
	// IgnoreRegion skips the figure 1/2 analytic region test, forcing
	// the controller to adapt from measurements even where the paper's
	// bounds already decide the point. Spec string key: region=off.
	IgnoreRegion bool
}

// Normalize validates the spec and resolves defaults in place: zero Window
// and Hysteresis become DefaultWindow and DefaultHysteresis, negative
// values collapse to Disabled, and Start is lower-cased with "" meaning
// "auto".
func (s *Spec) Normalize() error {
	if s.Window == 0 {
		s.Window = DefaultWindow
	}
	if s.Window < 0 {
		s.Window = Disabled
	}
	if s.Hysteresis == 0 {
		s.Hysteresis = DefaultHysteresis
	}
	if s.Hysteresis < 0 {
		s.Hysteresis = Disabled
	}
	if s.Window > 0 && s.Window > maxWindow {
		return fmt.Errorf("adaptive: window %d exceeds maximum %d", s.Window, maxWindow)
	}
	if math.IsNaN(s.Decay) || s.Decay < 0 || s.Decay >= 1 {
		return fmt.Errorf("adaptive: decay %g outside [0, 1)", s.Decay)
	}
	s.Start = strings.ToLower(strings.TrimSpace(s.Start))
	switch s.Start {
	case "":
		s.Start = "auto"
	case "auto", "sa", "da":
	default:
		return fmt.Errorf("adaptive: unknown start protocol %q (want sa, da or auto)", s.Start)
	}
	return nil
}

// maxWindow bounds the ring buffer so a hostile spec string cannot ask for
// an absurd per-object allocation.
const maxWindow = 1 << 20

// Pinned reports whether the spec disables switching outright (infinite
// window or infinite hysteresis). A pinned controller behaves exactly like
// its starting protocol. Call Normalize first.
func (s Spec) Pinned() bool { return s.Window == Disabled || s.Hysteresis == Disabled }

// String renders the spec in the canonical compact form accepted by
// ParseSpec, e.g. "adaptive:window=64,hysteresis=4,decay=0,start=auto,region=on".
func (s Spec) String() string {
	inf := func(v int) string {
		if v == Disabled {
			return "inf"
		}
		return strconv.Itoa(v)
	}
	region := "on"
	if s.IgnoreRegion {
		region = "off"
	}
	start := s.Start
	if start == "" {
		start = "auto"
	}
	return fmt.Sprintf("adaptive:window=%s,hysteresis=%s,decay=%s,start=%s,region=%s",
		inf(s.Window), inf(s.Hysteresis), strconv.FormatFloat(s.Decay, 'g', -1, 64), start, region)
}

// ParseSpec parses the compact textual controller specification the CLIs
// accept, in the same shape as workload.FromSpec:
//
//	adaptive[:key=value[,key=value...]]
//
// The leading "adaptive" name is optional when the string contains no
// colon, so both "adaptive:window=8,hysteresis=2" and "window=8" parse.
// Keys (all optional):
//
//	window      sliding-window length in requests; "inf" disables adaptation
//	hysteresis  consecutive requests before a switch; "inf" means never
//	decay       exponential decay of window entries, in [0, 1)
//	start       starting protocol: sa, da, auto
//	region      on (default) applies the figure 1/2 region test; off skips it
//
// An empty string yields the normalized zero Spec (all defaults). The
// returned Spec is normalized.
func ParseSpec(spec string) (Spec, error) {
	body := strings.TrimSpace(spec)
	if i := strings.IndexByte(body, ':'); i >= 0 {
		name := strings.ToLower(strings.TrimSpace(body[:i]))
		if name != "adaptive" {
			return Spec{}, fmt.Errorf("adaptive: unknown controller %q in spec %q", name, spec)
		}
		body = body[i+1:]
	} else if strings.EqualFold(body, "adaptive") {
		body = ""
	}

	params := map[string]string{}
	if body != "" {
		for _, kv := range strings.Split(body, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" {
				return Spec{}, fmt.Errorf("adaptive: malformed parameter %q in spec %q", kv, spec)
			}
			key := strings.ToLower(strings.TrimSpace(parts[0]))
			if _, dup := params[key]; dup {
				return Spec{}, fmt.Errorf("adaptive: duplicate parameter %q in spec %q", key, spec)
			}
			params[key] = strings.TrimSpace(parts[1])
		}
	}

	var s Spec
	used := map[string]bool{}
	intOrInf := func(key string) (int, error) {
		used[key] = true
		raw, ok := params[key]
		if !ok {
			return 0, nil
		}
		if strings.EqualFold(raw, "inf") {
			return Disabled, nil
		}
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("adaptive: bad %s=%q in spec %q (want a positive integer or \"inf\")", key, raw, spec)
		}
		return v, nil
	}
	var err error
	if s.Window, err = intOrInf("window"); err != nil {
		return Spec{}, err
	}
	if s.Hysteresis, err = intOrInf("hysteresis"); err != nil {
		return Spec{}, err
	}
	used["decay"] = true
	if raw, ok := params["decay"]; ok {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) || v < 0 || v >= 1 {
			return Spec{}, fmt.Errorf("adaptive: bad decay=%q in spec %q (want a value in [0, 1))", raw, spec)
		}
		s.Decay = v
	}
	used["start"] = true
	s.Start = params["start"]
	used["region"] = true
	if raw, ok := params["region"]; ok {
		switch strings.ToLower(raw) {
		case "on":
		case "off":
			s.IgnoreRegion = true
		default:
			return Spec{}, fmt.Errorf("adaptive: bad region=%q in spec %q (want on or off)", raw, spec)
		}
	}
	var unknown []string
	for key := range params {
		if !used[key] {
			unknown = append(unknown, key)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return Spec{}, fmt.Errorf("adaptive: unknown parameter %q in spec %q", unknown[0], spec)
	}
	if err := s.Normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
