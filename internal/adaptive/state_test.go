package adaptive

import (
	"bytes"
	"testing"

	"objalloc/internal/cost"
	"objalloc/internal/model"
)

// tailCost continues an already-running controller over sched and
// returns the accounting of just that tail (new transition charges
// included), mirroring RunCost but starting past the transitions already
// on the books.
func tailCost(c *Controller, sched model.Schedule) cost.Counts {
	seen := len(c.Transitions())
	var counts cost.Counts
	for _, q := range sched {
		scheme := c.Scheme()
		st := c.Step(q)
		counts = counts.Add(cost.StepCounts(st, scheme))
		ts := c.Transitions()
		for ; seen < len(ts); seen++ {
			counts = counts.Add(ts[seen].Counts)
		}
	}
	return counts
}

// A controller exported mid-run and imported into a fresh one must
// continue identically: same per-step accounting, same switches, same
// final scheme — and a re-export at the end must be byte-identical, so
// checkpoint/replay cycles are stable.
func TestStateRoundTripContinuesIdentically(t *testing.T) {
	const n, avail = 6, 2
	initial := initialScheme(avail)
	m := cost.SC(0.25, 1)
	spec, err := ParseSpec("adaptive:window=8,hysteresis=2")
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range testBattery(t, n) {
		orig, err := New(m, spec, initial, avail)
		if err != nil {
			t.Fatal(err)
		}
		half := len(cs.Sched) / 2
		for _, q := range cs.Sched[:half] {
			orig.Step(q)
		}
		blob, err := orig.ExportState()
		if err != nil {
			t.Fatalf("%s: export: %v", cs.Name, err)
		}
		restored, err := New(m, spec, initial, avail)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.ImportState(blob); err != nil {
			t.Fatalf("%s: import: %v", cs.Name, err)
		}
		if got, want := restored.Protocol(), orig.Protocol(); got != want {
			t.Fatalf("%s: restored protocol %s, want %s", cs.Name, got, want)
		}
		if got, want := restored.Scheme(), orig.Scheme(); got != want {
			t.Fatalf("%s: restored scheme %v, want %v", cs.Name, got, want)
		}

		co := tailCost(orig, cs.Sched[half:])
		cr := tailCost(restored, cs.Sched[half:])
		if co != cr {
			t.Fatalf("%s: tail accounting diverged: original %v, restored %v", cs.Name, co, cr)
		}
		if lo, lr := len(orig.Transitions()), len(restored.Transitions()); lo != lr {
			t.Fatalf("%s: transition count diverged: original %d, restored %d", cs.Name, lo, lr)
		}

		bo, err := orig.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		br, err := restored.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bo, br) {
			t.Fatalf("%s: final exports differ:\n  original %s\n  restored %s", cs.Name, bo, br)
		}
	}
}

// Garbage and inconsistent blobs are rejected, leaving the controller
// untouched.
func TestImportStateRejectsBadBlobs(t *testing.T) {
	const n, avail = 6, 2
	m := cost.SC(0.25, 1)
	for _, bad := range []string{
		"",
		"not json",
		`{"protocol":"xx","inner":{}}`,
	} {
		c, err := New(m, Spec{}, initialScheme(avail), avail)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.ImportState([]byte(bad)); err == nil {
			t.Fatalf("ImportState(%q) accepted a bad blob", bad)
		}
	}
}
