package adaptive

import (
	"encoding/json"
	"fmt"

	"objalloc/internal/dom"
	"objalloc/internal/model"
)

// ctlState is the serialized form of a Controller: the inner protocol
// and its own state blob, the step count, and — for a still-adapting
// controller — the full sliding window (ring, masses, hysteresis streak)
// plus the transition history. Masses are exported as float64 and
// round-trip exactly through JSON (Go emits the shortest representation
// that decodes back to the same bits), so a restored controller prices
// future windows identically to the one that exported it.
type ctlState struct {
	Protocol string          `json:"protocol"` // "sa" or "da"
	Inner    json.RawMessage `json:"inner"`
	Steps    int             `json:"steps"`

	Ring      []ringEntry                   `json:"ring,omitempty"`
	Head      int                           `json:"head,omitempty"`
	ReadMass  map[model.ProcessorID]float64 `json:"read_mass,omitempty"`
	WriteMass map[model.ProcessorID]float64 `json:"write_mass,omitempty"`
	Streak    int                           `json:"streak,omitempty"`
	Trans     []dom.Transition              `json:"trans,omitempty"`
}

type ringEntry struct {
	R bool              `json:"r"`
	P model.ProcessorID `json:"p"`
}

// ExportState implements dom.Restorer.
func (c *Controller) ExportState() ([]byte, error) {
	r, ok := c.inner.(dom.Restorer)
	if !ok {
		return nil, fmt.Errorf("adaptive: inner protocol %s is not restorable", c.inner.Name())
	}
	inner, err := r.ExportState()
	if err != nil {
		return nil, err
	}
	st := ctlState{
		Protocol: map[string]string{"SA": "sa", "DA": "da"}[c.inner.Name()],
		Inner:    inner,
		Steps:    c.steps,
	}
	if !c.pinned {
		st.Ring = make([]ringEntry, 0, len(c.ring))
		for _, a := range c.ring {
			st.Ring = append(st.Ring, ringEntry{R: a.read, P: a.p})
		}
		st.Head = c.head
		if len(c.readMass) > 0 {
			st.ReadMass = c.readMass
		}
		if len(c.writeMass) > 0 {
			st.WriteMass = c.writeMass
		}
		st.Streak = c.streak
		st.Trans = c.trans
	}
	return json.Marshal(st)
}

// ImportState implements dom.Restorer: called on a freshly constructed
// Controller with the same spec, model, initial scheme and threshold, it
// restores the exporter's protocol, window and transition history.
func (c *Controller) ImportState(data []byte) error {
	var st ctlState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("adaptive: controller state: %w", err)
	}
	inner, err := c.protocol(st.Protocol)
	if err != nil {
		return fmt.Errorf("adaptive: controller state: %w", err)
	}
	r, ok := inner.(dom.Restorer)
	if !ok {
		return fmt.Errorf("adaptive: inner protocol %q is not restorable", st.Protocol)
	}
	if err := r.ImportState(st.Inner); err != nil {
		return err
	}
	c.inner = inner
	c.steps = st.Steps
	if c.pinned {
		// A pinned controller keeps no window; the exporter was pinned
		// too (pinning is a pure function of spec and model), so the
		// window fields are empty.
		return nil
	}
	if len(st.Ring) > c.spec.Window {
		return fmt.Errorf("adaptive: controller state ring has %d entries, window is %d", len(st.Ring), c.spec.Window)
	}
	if st.Head < 0 || (len(st.Ring) > 0 && st.Head >= c.spec.Window) {
		return fmt.Errorf("adaptive: controller state head %d outside window %d", st.Head, c.spec.Window)
	}
	c.ring = c.ring[:0]
	for _, e := range st.Ring {
		c.ring = append(c.ring, access{read: e.R, p: e.P})
	}
	c.head = st.Head
	c.readMass = make(map[model.ProcessorID]float64, len(st.ReadMass))
	for p, v := range st.ReadMass {
		c.readMass[p] = v
	}
	c.writeMass = make(map[model.ProcessorID]float64, len(st.WriteMass))
	for p, v := range st.WriteMass {
		c.writeMass[p] = v
	}
	c.streak = st.Streak
	c.trans = st.Trans
	return nil
}
