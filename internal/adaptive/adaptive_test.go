package adaptive

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"objalloc/internal/adversary"
	"objalloc/internal/cost"
	"objalloc/internal/dom"
	"objalloc/internal/model"
	"objalloc/internal/workload"
)

func initialScheme(t int) model.Set {
	var s model.Set
	for k := 0; k < t; k++ {
		s = s.Add(model.ProcessorID(k))
	}
	return s
}

// testBattery is a small mixed battery: adversarial families plus seeded
// stochastic workloads.
func testBattery(t *testing.T, n int) []Case {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	uni, err := workload.FromSpec(rng, "uniform:n=6,len=200,pwrite=0.4")
	if err != nil {
		t.Fatal(err)
	}
	hot, err := workload.FromSpec(rng, "hotspot:n=6,len=200,pwrite=0.1")
	if err != nil {
		t.Fatal(err)
	}
	out := model.ProcessorID(n - 1)
	return []Case{
		{Name: "mixflip", Sched: adversary.MixFlip(out, 0, 40, 3)},
		{Name: "readrun", Sched: adversary.SAPunisher(out, 80)},
		{Name: "pingpong", Sched: adversary.PingPong(0, out, 40)},
		{Name: "uniform", Sched: uni},
		{Name: "hotspot", Sched: hot},
	}
}

// A controller with switching disabled is the pure protocol: identical
// total cost, identical integer accounting, no transitions, on every
// schedule of the battery.
func TestPinnedReproducesFixedProtocols(t *testing.T) {
	const n, avail = 6, 2
	initial := initialScheme(avail)
	m := cost.SC(0.25, 1)
	fixtures := []struct {
		start   string
		spec    Spec
		factory dom.Factory
	}{
		{"sa", Spec{Window: Disabled, Start: "sa"}, dom.StaticFactory},
		{"da", Spec{Window: Disabled, Start: "da"}, dom.DynamicFactory},
		{"sa", Spec{Hysteresis: Disabled, Start: "sa"}, dom.StaticFactory},
		{"da", Spec{Hysteresis: Disabled, Start: "da"}, dom.DynamicFactory},
	}
	for _, fx := range fixtures {
		for _, cs := range testBattery(t, n) {
			ctrl, err := New(m, fx.spec, initial, avail)
			if err != nil {
				t.Fatal(err)
			}
			if st := ctrl.WindowStat(); st.Adapting {
				t.Fatalf("%s/%s: pinned controller reports Adapting", fx.start, cs.Name)
			}
			gotCost, gotCounts, switches := RunCost(m, ctrl, cs.Sched)
			if switches != 0 || len(ctrl.Transitions()) != 0 {
				t.Fatalf("%s/%s: pinned controller switched %d times", fx.start, cs.Name, switches)
			}
			pure, err := fx.factory(initial, avail)
			if err != nil {
				t.Fatal(err)
			}
			alloc := dom.Run(pure, cs.Sched)
			wantCounts, _ := cost.ScheduleCounts(alloc, initial)
			wantCost := wantCounts.Price(m)
			if gotCounts != wantCounts || gotCost != wantCost {
				t.Errorf("%s/%s: pinned adaptive %v (%.4g) != pure %v (%.4g)",
					fx.start, cs.Name, gotCounts, gotCost, wantCounts, wantCost)
			}
		}
	}
}

// The figure 1/2 region test pins the controller wherever the paper's
// bounds decide the point, including auto-start protocol selection.
func TestRegionPinning(t *testing.T) {
	initial := initialScheme(2)
	cases := []struct {
		m        cost.Model
		protocol string
		adapting bool
	}{
		{cost.SC(0.25, 2), "DA", false},  // cd > 1: DA superior
		{cost.SC(0.1, 0.2), "SA", false}, // cc+cd < 0.5: SA superior
		{cost.MC(0.25, 1), "DA", false},  // mobile: DA superior everywhere
		{cost.SC(0.25, 1), "DA", true},   // unknown region: adapt, start DA
		{cost.SC(0.5, 1), "DA", true},    // unknown region
	}
	for _, cs := range cases {
		ctrl, err := New(cs.m, Spec{}, initial, 2)
		if err != nil {
			t.Fatal(err)
		}
		st := ctrl.WindowStat()
		if st.Protocol != cs.protocol || st.Adapting != cs.adapting {
			t.Errorf("%v: got protocol=%s adapting=%v, want %s/%v",
				cs.m, st.Protocol, st.Adapting, cs.protocol, cs.adapting)
		}
	}
	// region=off forces adaptation even where the bounds are decisive.
	ctrl, err := New(cost.SC(0.25, 2), Spec{IgnoreRegion: true}, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := ctrl.WindowStat(); !st.Adapting {
		t.Error("IgnoreRegion: controller not adapting")
	}
}

// The acceptance property of the subsystem: on a mix-flipping schedule the
// adaptive controller's total cost — including its transition charges — is
// strictly lower than both pure SA and pure DA.
func TestMixFlipBeatsBothFixed(t *testing.T) {
	const n, avail = 6, 2
	initial := initialScheme(avail)
	m := cost.SC(0.25, 1) // unknown region: adaptation active
	sched := adversary.MixFlip(model.ProcessorID(n-1), 0, 60, 4)

	ctrl, err := New(m, Spec{Window: 8, Hysteresis: 2}, initial, avail)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCost, _, switches := RunCost(m, ctrl, sched)
	if switches == 0 {
		t.Fatal("controller never switched on the mix-flip schedule")
	}

	var fixed [2]float64
	for i, f := range []dom.Factory{dom.StaticFactory, dom.DynamicFactory} {
		alg, err := f(initial, avail)
		if err != nil {
			t.Fatal(err)
		}
		fixed[i], _, _ = RunCost(m, alg, sched)
	}
	if !(adaptiveCost < fixed[0] && adaptiveCost < fixed[1]) {
		t.Fatalf("adaptive %.4g not strictly below SA %.4g and DA %.4g (switches=%d)",
			adaptiveCost, fixed[0], fixed[1], switches)
	}
	t.Logf("mixflip: adaptive=%.4g SA=%.4g DA=%.4g switches=%d", adaptiveCost, fixed[0], fixed[1], switches)
}

// Transition charges are real: the sum of per-transition counts matches
// cost.TransitionCounts of the recorded scheme movement, and RunCost's
// total includes them.
func TestTransitionBilling(t *testing.T) {
	const avail = 2
	initial := initialScheme(avail)
	m := cost.SC(0.25, 1)
	sched := adversary.MixFlip(5, 0, 40, 3)

	ctrl, err := New(m, Spec{Window: 8, Hysteresis: 2}, initial, avail)
	if err != nil {
		t.Fatal(err)
	}
	total, counts, switches := RunCost(m, ctrl, sched)
	trans := ctrl.Transitions()
	if len(trans) != switches {
		t.Fatalf("RunCost saw %d switches, controller recorded %d", switches, len(trans))
	}
	var transCounts cost.Counts
	prevStep := -1
	for _, tr := range trans {
		if tr.Step <= prevStep {
			t.Fatalf("transitions out of order: %+v", trans)
		}
		prevStep = tr.Step
		if tr.From == tr.To {
			t.Fatalf("self-transition recorded: %+v", tr)
		}
		transCounts = transCounts.Add(tr.Counts)
	}
	// Replaying the same schedule through a fresh pinned-per-segment pair
	// is overkill; instead verify the accounting identity: RunCost's
	// counts equal the per-step counts plus the transition counts, by
	// re-running without billing.
	ctrl2, err := New(m, Spec{Window: 8, Hysteresis: 2}, initial, avail)
	if err != nil {
		t.Fatal(err)
	}
	var stepOnly cost.Counts
	for _, q := range sched {
		scheme := ctrl2.Scheme()
		st := ctrl2.Step(q)
		stepOnly = stepOnly.Add(cost.StepCounts(st, scheme))
	}
	if want := stepOnly.Add(transCounts); counts != want {
		t.Fatalf("counts %v != steps %v + transitions %v", counts, stepOnly, transCounts)
	}
	if total != counts.Price(m) {
		t.Fatalf("total %.6g != priced counts %.6g", total, counts.Price(m))
	}
}

// Regret is deterministic: parallel and serial runs produce identical
// points (via JSON) for several seeds.
func TestRegretDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42, 9001} {
		spec := RegretSpec{
			Model: cost.SC(0.25, 1),
			Spec:  Spec{Window: 8, Hysteresis: 2},
			N:     6, T: 2,
			Seed: seed,
		}
		serialSpec := spec
		serialSpec.Parallelism = 1
		serial, err := Regret(context.Background(), serialSpec)
		if err != nil {
			t.Fatal(err)
		}
		parallelSpec := spec
		parallelSpec.Parallelism = 8
		parallel, err := Regret(context.Background(), parallelSpec)
		if err != nil {
			t.Fatal(err)
		}
		sj, _ := json.Marshal(serial)
		pj, _ := json.Marshal(parallel)
		if string(sj) != string(pj) {
			t.Fatalf("seed %d: parallel regret differs from serial:\n%s\n%s", seed, sj, pj)
		}
	}
}

// The default battery's regret points are sane: every ratio is >= 1 when
// OPT is exact, and the mix-flip case beats both fixed protocols.
func TestRegretBattery(t *testing.T) {
	points, err := Regret(context.Background(), RegretSpec{
		Model: cost.SC(0.25, 1),
		Spec:  Spec{Window: 8, Hysteresis: 2},
		N:     6, T: 2,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RegretPoint{}
	for _, p := range points {
		byName[p.Case] = p
		if p.Exact && p.VsOpt < 1-1e-9 {
			t.Errorf("case %q: adaptive %.6g beat exact OPT %.6g", p.Case, p.Adaptive, p.Opt)
		}
	}
	mf, ok := byName["mixflip"]
	if !ok {
		t.Fatal("default battery is missing the mixflip case")
	}
	if mf.VsBestFixed >= 1 {
		t.Errorf("mixflip: adaptive did not beat best fixed (ratio %.4g, SA=%.4g DA=%.4g adaptive=%.4g)",
			mf.VsBestFixed, mf.SA, mf.DA, mf.Adaptive)
	}
	if mf.Switches == 0 {
		t.Error("mixflip: no switches recorded")
	}
}

// Cancellation propagates.
func TestRegretCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Regret(ctx, RegretSpec{Model: cost.SC(0.25, 1), N: 6, T: 2})
	if err == nil {
		t.Fatal("cancelled regret returned nil error")
	}
}
