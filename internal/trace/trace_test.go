package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"objalloc/internal/model"
	"objalloc/internal/sim"
	"objalloc/internal/workload"
)

func TestCaptureAndReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, protocol := range []sim.Protocol{sim.SA, sim.DA} {
		sched := workload.Uniform(rng, 5, 60, 0.3)
		rec, err := Capture(protocol, 5, 2, model.NewSet(0, 1), sched)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Counts.IO == 0 {
			t.Fatal("capture recorded no work")
		}
		if err := rec.Replay(); err != nil {
			t.Errorf("%v: replay: %v", protocol, err)
		}
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sched := workload.Uniform(rng, 5, 40, 0.3)
	rec, err := Capture(sim.DA, 5, 2, model.NewSet(0, 1), sched)
	if err != nil {
		t.Fatal(err)
	}
	rec.Counts.Control++
	if err := rec.Replay(); err == nil {
		t.Error("tampered counts replayed clean")
	}
	rec.Counts.Control--
	rec.FinalScheme = rec.FinalScheme.Add(63)
	if err := rec.Replay(); err == nil {
		t.Error("tampered final scheme replayed clean")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sched := workload.Uniform(rng, 4, 30, 0.4)
	rec, err := Capture(sim.SA, 4, 2, model.NewSet(0, 1), sched)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	// The file is human-readable: the schedule appears in paper notation.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), sched[0].String()) {
		t.Errorf("record not in paper notation:\n%s", raw)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Counts != rec.Counts || loaded.FinalScheme != rec.FinalScheme ||
		loaded.Schedule.String() != rec.Schedule.String() {
		t.Errorf("round trip changed the record")
	}
	if err := loaded.Replay(); err != nil {
		t.Errorf("loaded record replay: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("garbage loaded")
	}
	wrongProto := filepath.Join(dir, "proto.json")
	os.WriteFile(wrongProto, []byte(`{"protocol":"XX","n":3,"t":2,"initial":"{0,1}","schedule":"r1"}`), 0o644)
	if _, err := Load(wrongProto); err == nil {
		t.Error("unknown protocol loaded")
	}
}

func TestCaptureValidation(t *testing.T) {
	if _, err := Capture(sim.DA, 3, 2, model.NewSet(0), nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSaveErrors(t *testing.T) {
	rec := &Record{Protocol: "SA", N: 3, T: 2, Initial: model.NewSet(0, 1),
		Schedule: model.MustParseSchedule("r1")}
	if err := rec.Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json")); err == nil {
		t.Error("save into missing directory accepted")
	}
}

func TestReplayErrors(t *testing.T) {
	bad := &Record{Protocol: "XX"}
	if err := bad.Replay(); err == nil {
		t.Error("unknown protocol replayed")
	}
	invalid := &Record{Protocol: "DA", N: 3, T: 2, Initial: model.NewSet(0)}
	if err := invalid.Replay(); err == nil {
		t.Error("invalid config replayed")
	}
}

func TestCaptureRecordsRunningCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sched := workload.Uniform(rng, 5, 50, 0.3)
	rec, err := Capture(sim.DA, 5, 2, model.NewSet(0, 1), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Running) != len(rec.Schedule) {
		t.Fatalf("running column has %d entries for %d requests", len(rec.Running), len(rec.Schedule))
	}
	if last := rec.Running[len(rec.Running)-1]; last != rec.Counts {
		t.Fatalf("last running entry %v != totals %v", last, rec.Counts)
	}
	// The column is cumulative and monotone.
	for i := 1; i < len(rec.Running); i++ {
		prev, cur := rec.Running[i-1], rec.Running[i]
		if cur.Control < prev.Control || cur.Data < prev.Data || cur.IO < prev.IO {
			t.Fatalf("running column not monotone at request %d: %v -> %v", i, prev, cur)
		}
	}
	if err := rec.Replay(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayDetectsRunningTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sched := workload.Uniform(rng, 5, 40, 0.3)
	rec, err := Capture(sim.DA, 5, 2, model.NewSet(0, 1), sched)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(rec.Running) / 2
	rec.Running[mid].IO++
	err = rec.Replay()
	if err == nil {
		t.Fatal("tampered running column replayed clean")
	}
	if !strings.Contains(err.Error(), "running cost") {
		t.Fatalf("error does not name the running column: %v", err)
	}
	rec.Running[mid].IO--
	// Wrong length is also a mismatch.
	rec.Running = rec.Running[:len(rec.Running)-1]
	if err := rec.Replay(); err == nil {
		t.Fatal("truncated running column replayed clean")
	}
}

// Records written before the running column existed (Running empty) must
// still replay: the column is optional.
func TestReplayWithoutRunningColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sched := workload.Uniform(rng, 4, 30, 0.4)
	rec, err := Capture(sim.SA, 4, 2, model.NewSet(0, 1), sched)
	if err != nil {
		t.Fatal(err)
	}
	rec.Running = nil
	if err := rec.Replay(); err != nil {
		t.Fatalf("legacy record without running column: %v", err)
	}
}
