// Package trace records executed simulator runs as JSON documents and
// replays them, verifying that a run reproduces its recorded accounting
// bit for bit. Records serve as regression corpora: a protocol change that
// alters by even one control message which messages SA or DA sends shows
// up as a replay mismatch.
//
// The schedule is stored in the paper's own notation ("w2 r4 w3 ..."), so
// records are readable and diffable.
package trace

import (
	"encoding/json"
	"fmt"
	"os"

	"objalloc/internal/cost"
	"objalloc/internal/model"
	"objalloc/internal/sim"
)

// Record is one captured run.
type Record struct {
	// Protocol is "SA" or "DA".
	Protocol string `json:"protocol"`
	// N and T describe the cluster.
	N int `json:"n"`
	T int `json:"t"`
	// Initial is the initial allocation scheme.
	Initial model.Set `json:"initial"`
	// Schedule is the executed request sequence.
	Schedule model.Schedule `json:"schedule"`
	// Counts is the accounting the run produced.
	Counts cost.Counts `json:"counts"`
	// FinalScheme is the allocation scheme after the run.
	FinalScheme model.Set `json:"final_scheme"`
}

// Capture executes the schedule on a fresh cluster and returns the record.
func Capture(protocol sim.Protocol, n, t int, initial model.Set, sched model.Schedule) (*Record, error) {
	c, err := sim.New(sim.Config{N: n, T: t, Protocol: protocol, Initial: initial})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if _, err := c.Run(sched); err != nil {
		return nil, err
	}
	return &Record{
		Protocol:    protocol.String(),
		N:           n,
		T:           t,
		Initial:     initial,
		Schedule:    sched.Clone(),
		Counts:      c.Counts(),
		FinalScheme: c.Scheme(),
	}, nil
}

// protocolOf parses the record's protocol name.
func (r *Record) protocol() (sim.Protocol, error) {
	switch r.Protocol {
	case "SA":
		return sim.SA, nil
	case "DA":
		return sim.DA, nil
	default:
		return 0, fmt.Errorf("trace: unknown protocol %q", r.Protocol)
	}
}

// Replay re-executes the record on a fresh cluster and returns an error if
// the accounting or the final allocation scheme deviates.
func (r *Record) Replay() error {
	protocol, err := r.protocol()
	if err != nil {
		return err
	}
	c, err := sim.New(sim.Config{N: r.N, T: r.T, Protocol: protocol, Initial: r.Initial})
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Run(r.Schedule); err != nil {
		return err
	}
	if got := c.Counts(); got != r.Counts {
		return fmt.Errorf("trace: replay counts %v differ from recorded %v", got, r.Counts)
	}
	if got := c.Scheme(); got != r.FinalScheme {
		return fmt.Errorf("trace: replay final scheme %v differs from recorded %v", got, r.FinalScheme)
	}
	return nil
}

// Save writes the record as indented JSON.
func (r *Record) Save(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return nil
}

// Load reads a record saved by Save.
func Load(path string) (*Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	var r Record
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	if _, err := r.protocol(); err != nil {
		return nil, err
	}
	return &r, nil
}
