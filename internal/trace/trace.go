// Package trace records executed simulator runs as JSON documents and
// replays them, verifying that a run reproduces its recorded accounting
// bit for bit. Records serve as regression corpora: a protocol change that
// alters by even one control message which messages SA or DA sends shows
// up as a replay mismatch.
//
// The schedule is stored in the paper's own notation ("w2 r4 w3 ..."), so
// records are readable and diffable.
package trace

import (
	"encoding/json"
	"fmt"
	"os"

	"objalloc/internal/cost"
	"objalloc/internal/model"
	"objalloc/internal/obs"
	"objalloc/internal/sim"
)

// Record is one captured run.
type Record struct {
	// Protocol is "SA" or "DA".
	Protocol string `json:"protocol"`
	// N and T describe the cluster.
	N int `json:"n"`
	T int `json:"t"`
	// Initial is the initial allocation scheme.
	Initial model.Set `json:"initial"`
	// Schedule is the executed request sequence.
	Schedule model.Schedule `json:"schedule"`
	// Counts is the accounting the run produced.
	Counts cost.Counts `json:"counts"`
	// FinalScheme is the allocation scheme after the run.
	FinalScheme model.Set `json:"final_scheme"`
	// Running is the cumulative accounting after each request, derived
	// from the instrumentation layer's per-request events. Its last entry
	// equals Counts. Records captured before this column existed omit it;
	// Replay then verifies totals only.
	Running []cost.Counts `json:"running,omitempty"`
}

// runningFromEvents folds the per-request "request" events of one run into
// a cumulative accounting column, one entry per executed request.
func runningFromEvents(events []obs.Event) []cost.Counts {
	running := make([]cost.Counts, 0, len(events))
	var cum cost.Counts
	for _, e := range events {
		cum.Control += int(e.Int64At("ctl"))
		cum.Data += int(e.Int64At("data"))
		cum.IO += int(e.Int64At("io"))
		running = append(running, cum)
	}
	return running
}

// Capture executes the schedule on a fresh instrumented cluster and
// returns the record, including the per-request running-cost column.
func Capture(protocol sim.Protocol, n, t int, initial model.Set, sched model.Schedule) (*Record, error) {
	mem := obs.NewMem()
	c, err := sim.New(sim.Config{N: n, T: t, Protocol: protocol, Initial: initial, Obs: &obs.Obs{Sink: mem}})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if _, err := c.Run(sched); err != nil {
		return nil, err
	}
	return &Record{
		Protocol:    protocol.String(),
		N:           n,
		T:           t,
		Initial:     initial,
		Schedule:    sched.Clone(),
		Counts:      c.Counts(),
		FinalScheme: c.Scheme(),
		Running:     runningFromEvents(mem.Named("request")),
	}, nil
}

// protocolOf parses the record's protocol name.
func (r *Record) protocol() (sim.Protocol, error) {
	switch r.Protocol {
	case "SA":
		return sim.SA, nil
	case "DA":
		return sim.DA, nil
	default:
		return 0, fmt.Errorf("trace: unknown protocol %q", r.Protocol)
	}
}

// Replay re-executes the record on a fresh instrumented cluster and
// returns an error if the accounting — the totals, the final allocation
// scheme, or (when recorded) any entry of the per-request running-cost
// column — deviates. A running-column mismatch names the first deviating
// request, localizing a regression to the request that caused it.
func (r *Record) Replay() error {
	protocol, err := r.protocol()
	if err != nil {
		return err
	}
	mem := obs.NewMem()
	c, err := sim.New(sim.Config{N: r.N, T: r.T, Protocol: protocol, Initial: r.Initial, Obs: &obs.Obs{Sink: mem}})
	if err != nil {
		return err
	}
	defer c.Close()
	if _, err := c.Run(r.Schedule); err != nil {
		return err
	}
	if got := c.Counts(); got != r.Counts {
		return fmt.Errorf("trace: replay counts %v differ from recorded %v", got, r.Counts)
	}
	if got := c.Scheme(); got != r.FinalScheme {
		return fmt.Errorf("trace: replay final scheme %v differs from recorded %v", got, r.FinalScheme)
	}
	if len(r.Running) > 0 {
		got := runningFromEvents(mem.Named("request"))
		if len(got) != len(r.Running) {
			return fmt.Errorf("trace: replay produced %d request events, record has %d running entries", len(got), len(r.Running))
		}
		for i := range got {
			if got[i] != r.Running[i] {
				return fmt.Errorf("trace: replay running cost %v differs from recorded %v at request %d (%s)", got[i], r.Running[i], i, r.Schedule[i])
			}
		}
	}
	return nil
}

// Save writes the record as indented JSON.
func (r *Record) Save(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("trace: write: %w", err)
	}
	return nil
}

// Load reads a record saved by Save.
func Load(path string) (*Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	var r Record
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	if _, err := r.protocol(); err != nil {
		return nil, err
	}
	return &r, nil
}
