// Package storage implements the local database that every processor of the
// distributed system owns (§1.2 of Huang & Wolfson, ICDE 1994): a versioned
// store for the replicated object, with the I/O accounting the paper's cost
// model charges — one unit per input (read) or output (write) of the object.
//
// Two implementations are provided. Mem keeps the object in memory and is
// what the simulators use for speed. Disk persists every output to an
// append-only log with checksummed, length-prefixed records and recovers
// the latest durable version on open, so a processor restart does not lose
// the replica — the property that makes the allocation scheme meaningful as
// an availability mechanism.
package storage

import (
	"errors"
	"fmt"
	"sync"
)

// Version is one version of the replicated object. Versions are totally
// ordered by Seq; the concurrency-control mechanism the paper assumes
// (§3.1) assigns each write the next sequence number.
type Version struct {
	// Seq is the global sequence number of the write that created this
	// version. Seq 0 is reserved for "no version".
	Seq uint64
	// Writer is the processor that issued the write.
	Writer int
	// Data is the object content.
	Data []byte
}

// IsZero reports whether v is the absent version.
func (v Version) IsZero() bool { return v.Seq == 0 }

// ErrNoObject is returned by Get when the local database holds no valid
// copy of the object (never stored, or invalidated).
var ErrNoObject = errors.New("storage: no valid local copy of the object")

// Store is a processor's local database, restricted to the single object
// the paper's model manages. Implementations must be safe for concurrent
// use: reads may execute concurrently with each other (§3.1).
type Store interface {
	// Put outputs a version of the object to the local database,
	// replacing any previous copy. It costs one output I/O.
	Put(v Version) error
	// Get inputs the latest locally stored version of the object.
	// It costs one input I/O. It returns ErrNoObject if the local copy is
	// absent or invalidated.
	Get() (Version, error)
	// Invalidate discards the local copy (the effect of an 'invalidate'
	// control message). Invalidation is a metadata operation and costs no
	// object I/O in the paper's model.
	Invalidate() error
	// HasCopy reports whether a valid local copy exists, without touching
	// the object itself (no I/O charged — this is catalog metadata).
	HasCopy() bool
	// Peek returns the current version without charging an I/O. It is for
	// harness introspection (computing the cluster's allocation scheme,
	// preloading checks) — protocol code must use Get so costs are billed.
	Peek() (Version, bool)
	// Stats returns the cumulative I/O counters.
	Stats() IOStats
	// ResetStats zeroes the I/O counters, e.g. after preloading the
	// initial allocation scheme or between experiment phases.
	ResetStats()
	// Close releases resources.
	Close() error
}

// IOStats counts the primitive local-database operations. Inputs+Outputs is
// the quantity the cost model multiplies by cio.
type IOStats struct {
	Inputs  int // object read from the local database
	Outputs int // object written to the local database
}

// Total returns Inputs + Outputs: the number of cio-priced operations.
func (s IOStats) Total() int { return s.Inputs + s.Outputs }

// Mem is an in-memory Store.
type Mem struct {
	mu      sync.RWMutex
	version Version
	valid   bool
	stats   IOStats
}

// NewMem returns an empty in-memory local database.
func NewMem() *Mem { return &Mem{} }

// Put implements Store.
func (m *Mem) Put(v Version) error {
	if v.IsZero() {
		return fmt.Errorf("storage: Put of zero version")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.version = cloneVersion(v)
	m.valid = true
	m.stats.Outputs++
	return nil
}

// Get implements Store.
func (m *Mem) Get() (Version, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Inputs++
	if !m.valid {
		return Version{}, ErrNoObject
	}
	return cloneVersion(m.version), nil
}

// Invalidate implements Store.
func (m *Mem) Invalidate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.valid = false
	m.version = Version{}
	return nil
}

// HasCopy implements Store.
func (m *Mem) HasCopy() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.valid
}

// Peek implements Store.
func (m *Mem) Peek() (Version, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if !m.valid {
		return Version{}, false
	}
	return cloneVersion(m.version), true
}

// Stats implements Store.
func (m *Mem) Stats() IOStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// ResetStats implements Store.
func (m *Mem) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = IOStats{}
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

func cloneVersion(v Version) Version {
	out := v
	if v.Data != nil {
		out.Data = append([]byte(nil), v.Data...)
	}
	return out
}
