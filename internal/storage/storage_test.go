package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// storeFactory builds a fresh store for the shared conformance tests.
type storeFactory func(t *testing.T) Store

func memFactory(t *testing.T) Store { return NewMem() }

func diskFactory(t *testing.T) Store {
	t.Helper()
	d, err := OpenDisk(filepath.Join(t.TempDir(), "obj.log"), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func factories() map[string]storeFactory {
	return map[string]storeFactory{"mem": memFactory, "disk": diskFactory}
}

func TestEmptyStore(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if s.HasCopy() {
				t.Error("empty store HasCopy = true")
			}
			if _, err := s.Get(); !errors.Is(err, ErrNoObject) {
				t.Errorf("Get on empty store: %v, want ErrNoObject", err)
			}
			// The failed Get still counted as an input attempt? No: the
			// paper charges I/O for inputting the object; an absent object
			// is a catalog miss. We charge it anyway as an input probe —
			// assert the documented behaviour: exactly one input counted.
			if got := s.Stats().Inputs; got != 1 {
				t.Errorf("Inputs = %d, want 1", got)
			}
		})
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			v := Version{Seq: 3, Writer: 2, Data: []byte("object-state")}
			if err := s.Put(v); err != nil {
				t.Fatal(err)
			}
			if !s.HasCopy() {
				t.Error("HasCopy = false after Put")
			}
			got, err := s.Get()
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != 3 || got.Writer != 2 || !bytes.Equal(got.Data, v.Data) {
				t.Errorf("Get = %+v", got)
			}
			st := s.Stats()
			if st.Outputs != 1 || st.Inputs != 1 || st.Total() != 2 {
				t.Errorf("stats = %+v", st)
			}
		})
	}
}

func TestPutReplaces(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			for seq := uint64(1); seq <= 5; seq++ {
				if err := s.Put(Version{Seq: seq, Writer: 1, Data: []byte{byte(seq)}}); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Get()
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != 5 {
				t.Errorf("Seq = %d, want 5", got.Seq)
			}
		})
	}
}

func TestInvalidate(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if err := s.Put(Version{Seq: 1, Writer: 0, Data: []byte("x")}); err != nil {
				t.Fatal(err)
			}
			if err := s.Invalidate(); err != nil {
				t.Fatal(err)
			}
			if s.HasCopy() {
				t.Error("HasCopy = true after Invalidate")
			}
			if _, err := s.Get(); !errors.Is(err, ErrNoObject) {
				t.Errorf("Get after Invalidate: %v", err)
			}
			// Invalidating twice is harmless.
			if err := s.Invalidate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPutZeroVersionRejected(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			if err := mk(t).Put(Version{}); err == nil {
				t.Error("Put of zero version accepted")
			}
		})
	}
}

func TestGetReturnsCopy(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			data := []byte("mutate-me")
			if err := s.Put(Version{Seq: 1, Writer: 0, Data: data}); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get()
			if err != nil {
				t.Fatal(err)
			}
			got.Data[0] = 'X'
			again, err := s.Get()
			if err != nil {
				t.Fatal(err)
			}
			if again.Data[0] != 'm' {
				t.Error("Get exposed internal buffer")
			}
			// Mutating the caller's slice after Put must not affect the store.
			data[0] = 'Z'
			final, _ := s.Get()
			if final.Data[0] != 'm' {
				t.Error("Put aliased caller buffer")
			}
		})
	}
}

func TestConcurrentReaders(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if err := s.Put(Version{Seq: 1, Writer: 0, Data: []byte("shared")}); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < 50; j++ {
						if _, err := s.Get(); err != nil {
							t.Errorf("concurrent Get: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if got := s.Stats().Inputs; got != 16*50 {
				t.Errorf("Inputs = %d, want %d", got, 16*50)
			}
		})
	}
}

func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obj.log")
	d, err := OpenDisk(path, DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := d.Put(Version{Seq: seq, Writer: int(seq % 3), Data: []byte(fmt.Sprintf("v%d", seq))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 10 || string(got.Data) != "v10" {
		t.Errorf("recovered %+v", got)
	}
}

func TestDiskRecoveryAfterInvalidate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(Version{Seq: 1, Writer: 0, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Invalidate(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	re, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.HasCopy() {
		t.Error("invalidated copy resurrected by recovery")
	}
}

func TestDiskRecoveryTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(Version{Seq: 1, Writer: 0, Data: []byte("durable")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(Version{Seq: 2, Writer: 1, Data: []byte("to-be-torn")}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || string(got.Data) != "durable" {
		t.Errorf("after torn tail recovered %+v, want seq 1", got)
	}
	// The store must remain writable after truncating the torn tail.
	if err := re.Put(Version{Seq: 3, Writer: 2, Data: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	latest, _ := re.Get()
	if latest.Seq != 3 {
		t.Errorf("post-recovery Put: seq = %d", latest.Seq)
	}
}

func TestDiskRecoveryCorruptedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put(Version{Seq: 1, Writer: 0, Data: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(Version{Seq: 2, Writer: 0, Data: []byte("bad!")}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Flip a bit inside the second record's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-6] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 {
		t.Errorf("corrupt record survived: seq = %d", got.Seq)
	}
}

func TestDiskCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{CompactAfter: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	payload := bytes.Repeat([]byte("x"), 64)
	for seq := uint64(1); seq <= 100; seq++ {
		if err := d.Put(Version{Seq: seq, Writer: 0, Data: payload}); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Without compaction the log would be ~100 * (89+64) bytes; compaction
	// keeps it near one record past the threshold.
	if fi.Size() > 1024 {
		t.Errorf("log size %d after compaction, want <= 1024", fi.Size())
	}
	got, err := d.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 100 {
		t.Errorf("seq after compaction = %d", got.Seq)
	}
}

func TestDiskCompactionSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{CompactAfter: 128})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 50; seq++ {
		if err := d.Put(Version{Seq: seq, Writer: 1, Data: []byte("abcdefgh")}); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	re, err := OpenDisk(path, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 50 {
		t.Errorf("seq = %d, want 50", got.Seq)
	}
}

// Property: a sequence of Put/Invalidate operations applied to Mem and Disk
// leaves both stores observably identical.
func TestMemDiskEquivalence(t *testing.T) {
	type op struct {
		Invalidate bool
		Seq        uint16
		Data       []byte
	}
	path := filepath.Join(t.TempDir(), "equiv.log")
	check := func(ops []op) bool {
		mem := NewMem()
		disk, err := OpenDisk(path, DiskOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			disk.Close()
			os.Remove(path)
		}()
		for _, o := range ops {
			if o.Invalidate {
				if err := mem.Invalidate(); err != nil {
					return false
				}
				if err := disk.Invalidate(); err != nil {
					return false
				}
				continue
			}
			v := Version{Seq: uint64(o.Seq) + 1, Writer: 0, Data: o.Data}
			if err := mem.Put(v); err != nil {
				return false
			}
			if err := disk.Put(v); err != nil {
				return false
			}
		}
		if mem.HasCopy() != disk.HasCopy() {
			return false
		}
		mv, merr := mem.Get()
		dv, derr := disk.Get()
		if (merr == nil) != (derr == nil) {
			return false
		}
		if merr == nil && (mv.Seq != dv.Seq || !bytes.Equal(mv.Data, dv.Data)) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPeekAndResetStats(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if _, ok := s.Peek(); ok {
				t.Error("Peek on empty store returned a version")
			}
			if err := s.Put(Version{Seq: 2, Writer: 1, Data: []byte("p")}); err != nil {
				t.Fatal(err)
			}
			v, ok := s.Peek()
			if !ok || v.Seq != 2 {
				t.Errorf("Peek = %+v ok=%v", v, ok)
			}
			// Peek costs nothing.
			if got := s.Stats(); got.Inputs != 0 || got.Outputs != 1 {
				t.Errorf("stats after Peek = %+v", got)
			}
			// Peek returns a copy.
			v.Data[0] = 'X'
			if w, _ := s.Peek(); w.Data[0] != 'p' {
				t.Error("Peek exposed internal buffer")
			}
			s.ResetStats()
			if s.Stats() != (IOStats{}) {
				t.Error("ResetStats did not zero")
			}
		})
	}
}

func TestMemClose(t *testing.T) {
	if err := NewMem().Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestOpenDiskErrors(t *testing.T) {
	// Path whose parent cannot be created (a file stands in the way).
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(filepath.Join(blocker, "sub", "obj.log"), DiskOptions{}); err == nil {
		t.Error("OpenDisk under a file accepted")
	}
	// Path that is a directory.
	if _, err := OpenDisk(dir, DiskOptions{}); err == nil {
		t.Error("OpenDisk on a directory accepted")
	}
}

func TestDiskInvalidateSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put(Version{Seq: 1, Writer: 0, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if d.HasCopy() {
		t.Error("copy survived synced invalidate")
	}
}

func TestDiskCompactionOfInvalidatedState(t *testing.T) {
	// Compacting a store whose current state is "no copy" writes an empty
	// log.
	path := filepath.Join(t.TempDir(), "obj.log")
	d, err := OpenDisk(path, DiskOptions{CompactAfter: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for seq := uint64(1); seq <= 3; seq++ {
		if err := d.Put(Version{Seq: seq, Writer: 0, Data: bytes.Repeat([]byte("y"), 40)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Invalidate(); err != nil {
		t.Fatal(err)
	}
	// Next Put triggers compaction with valid=false first.
	if err := d.Put(Version{Seq: 9, Writer: 1, Data: []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get()
	if err != nil {
		t.Fatal(err)
	}
	if v.Seq != 9 {
		t.Errorf("seq = %d", v.Seq)
	}
}
