package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDiskRecovery writes a version, then appends arbitrary garbage to the
// log and re-opens it: recovery must never panic, never corrupt the
// durable prefix, and always leave the store writable.
func FuzzDiskRecovery(f *testing.F) {
	f.Add([]byte{}, []byte("payload"))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, []byte("x"))
	f.Add(bytes.Repeat([]byte{0xa1, 0xc7, 0x1e, 0x0b}, 8), []byte("magic-ish"))
	f.Fuzz(func(t *testing.T, garbage, payload []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "obj.log")
		d, err := OpenDisk(path, DiskOptions{Sync: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put(Version{Seq: 7, Writer: 1, Data: payload}); err != nil {
			t.Fatal(err)
		}
		d.Close()

		fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(garbage)
		fh.Close()

		re, err := OpenDisk(path, DiskOptions{})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer re.Close()
		v, err := re.Get()
		if err != nil {
			// The appended bytes could only remove state via a valid
			// tombstone record, which requires a correct checksum; treat
			// a lost version as corruption unless the garbage really
			// forged one (astronomically unlikely but checkable).
			t.Fatalf("durable version lost: %v", err)
		}
		if v.Seq == 7 && !bytes.Equal(v.Data, payload) {
			t.Fatalf("durable version corrupted: %+v", v)
		}
		// v.Seq != 7 can only happen if the fuzzer forged a checksummed
		// record; the store must still be internally consistent, which
		// the write probe below exercises.
		if err := re.Put(Version{Seq: 8, Writer: 2, Data: []byte("post")}); err != nil {
			t.Fatalf("store not writable after recovery: %v", err)
		}
	})
}
