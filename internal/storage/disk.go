package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Disk is a Store backed by an append-only log file. Every Put appends a
// checksummed record and fsyncs (when Sync is enabled); Invalidate appends
// a tombstone. On open, the log is scanned and the last valid record wins —
// a torn or corrupted tail (e.g. from a crash mid-write) is truncated, so
// recovery is exact: the store comes back with precisely the last durably
// written state.
//
// Record format (little endian):
//
//	magic   uint32  = recordMagic
//	kind    uint8   (recordPut | recordInvalidate)
//	seq     uint64
//	writer  int64
//	dataLen uint32
//	data    [dataLen]byte
//	crc     uint32  (CRC-32C of everything above except magic)
//
// When the log exceeds CompactAfter bytes, Put compacts it to a single
// record holding the current state.
type Disk struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	version Version
	valid   bool
	stats   IOStats
	size    int64
	sync    bool

	// CompactAfter is the log size in bytes that triggers compaction on
	// the next Put. Zero means the default (1 MiB).
	CompactAfter int64
}

const (
	recordMagic      = 0x0b1ec7a1
	recordPut        = byte(1)
	recordInvalidate = byte(2)

	defaultCompactAfter = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DiskOptions configures OpenDisk.
type DiskOptions struct {
	// Sync forces an fsync after every append. Slower, but a crash can
	// then never lose an acknowledged Put.
	Sync bool
	// CompactAfter overrides the compaction threshold in bytes.
	CompactAfter int64
}

// OpenDisk opens (or creates) the log file at path and recovers the latest
// durable version from it.
func OpenDisk(path string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("storage: create log dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	d := &Disk{path: path, f: f, sync: opts.Sync, CompactAfter: opts.CompactAfter}
	if d.CompactAfter == 0 {
		d.CompactAfter = defaultCompactAfter
	}
	if err := d.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// recover scans the log, applies every valid record in order, and truncates
// any invalid tail.
func (d *Disk) recover() error {
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek: %w", err)
	}
	var offset int64
	for {
		rec, n, err := readRecord(d.f)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn or corrupt tail: truncate it away and stop.
			break
		}
		switch rec.kind {
		case recordPut:
			d.version = Version{Seq: rec.seq, Writer: int(rec.writer), Data: rec.data}
			d.valid = true
		case recordInvalidate:
			d.version = Version{}
			d.valid = false
		}
		offset += int64(n)
	}
	if err := d.f.Truncate(offset); err != nil {
		return fmt.Errorf("storage: truncate corrupt tail: %w", err)
	}
	if _, err := d.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("storage: seek to tail: %w", err)
	}
	d.size = offset
	return nil
}

type record struct {
	kind   byte
	seq    uint64
	writer int64
	data   []byte
}

func readRecord(r io.Reader) (record, int, error) {
	var hdr [4 + 1 + 8 + 8 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, io.ErrUnexpectedEOF
		}
		return record{}, 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
		return record{}, 0, fmt.Errorf("storage: bad record magic")
	}
	rec := record{
		kind:   hdr[4],
		seq:    binary.LittleEndian.Uint64(hdr[5:13]),
		writer: int64(binary.LittleEndian.Uint64(hdr[13:21])),
	}
	dataLen := binary.LittleEndian.Uint32(hdr[21:25])
	if dataLen > 1<<30 {
		return record{}, 0, fmt.Errorf("storage: implausible record length %d", dataLen)
	}
	rec.data = make([]byte, dataLen)
	if _, err := io.ReadFull(r, rec.data); err != nil {
		return record{}, 0, io.ErrUnexpectedEOF
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return record{}, 0, io.ErrUnexpectedEOF
	}
	crc := crc32.New(crcTable)
	crc.Write(hdr[4:25])
	crc.Write(rec.data)
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc.Sum32() {
		return record{}, 0, fmt.Errorf("storage: record checksum mismatch")
	}
	n := len(hdr) + len(rec.data) + 4
	return rec, n, nil
}

func appendRecord(w io.Writer, rec record) (int, error) {
	var hdr [4 + 1 + 8 + 8 + 4]byte
	binary.LittleEndian.PutUint32(hdr[0:4], recordMagic)
	hdr[4] = rec.kind
	binary.LittleEndian.PutUint64(hdr[5:13], rec.seq)
	binary.LittleEndian.PutUint64(hdr[13:21], uint64(rec.writer))
	binary.LittleEndian.PutUint32(hdr[21:25], uint32(len(rec.data)))
	crc := crc32.New(crcTable)
	crc.Write(hdr[4:25])
	crc.Write(rec.data)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(rec.data); err != nil {
		return 0, err
	}
	if _, err := w.Write(crcBuf[:]); err != nil {
		return 0, err
	}
	return len(hdr) + len(rec.data) + 4, nil
}

// Put implements Store.
func (d *Disk) Put(v Version) error {
	if v.IsZero() {
		return fmt.Errorf("storage: Put of zero version")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.size >= d.CompactAfter {
		if err := d.compactLocked(); err != nil {
			return err
		}
	}
	n, err := appendRecord(d.f, record{kind: recordPut, seq: v.Seq, writer: int64(v.Writer), data: v.Data})
	if err != nil {
		return fmt.Errorf("storage: append: %w", err)
	}
	if d.sync {
		if err := d.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	d.size += int64(n)
	d.version = cloneVersion(v)
	d.valid = true
	d.stats.Outputs++
	return nil
}

// Get implements Store.
func (d *Disk) Get() (Version, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Inputs++
	if !d.valid {
		return Version{}, ErrNoObject
	}
	return cloneVersion(d.version), nil
}

// Invalidate implements Store.
func (d *Disk) Invalidate() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.valid {
		return nil
	}
	n, err := appendRecord(d.f, record{kind: recordInvalidate})
	if err != nil {
		return fmt.Errorf("storage: append tombstone: %w", err)
	}
	if d.sync {
		if err := d.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	d.size += int64(n)
	d.version = Version{}
	d.valid = false
	return nil
}

// HasCopy implements Store.
func (d *Disk) HasCopy() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.valid
}

// Peek implements Store.
func (d *Disk) Peek() (Version, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.valid {
		return Version{}, false
	}
	return cloneVersion(d.version), true
}

// Stats implements Store.
func (d *Disk) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements Store.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = IOStats{}
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}

// compactLocked rewrites the log as a single record holding the current
// state. Called with d.mu held.
func (d *Disk) compactLocked() error {
	tmp := d.path + ".compact"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	var size int64
	if d.valid {
		n, err := appendRecord(f, record{kind: recordPut, seq: d.version.Seq, writer: int64(d.version.Writer), data: d.version.Data})
		if err != nil {
			f.Close()
			return fmt.Errorf("storage: compact write: %w", err)
		}
		size = int64(n)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: compact sync: %w", err)
	}
	if err := os.Rename(tmp, d.path); err != nil {
		f.Close()
		return fmt.Errorf("storage: compact rename: %w", err)
	}
	old := d.f
	d.f = f
	d.size = size
	if _, err := d.f.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("storage: compact seek: %w", err)
	}
	return old.Close()
}
