// Package stats provides the small numeric and tabular helpers the
// experiment harness uses to summarize measurements and print the
// paper-style result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Stddev  float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table accumulates rows and renders them with aligned columns — the
// format cmd/experiments prints for every reproduced table and figure.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table, for
// report generation.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| ")
	b.WriteString(strings.Join(t.header, " | "))
	b.WriteString(" |\n|")
	for range t.header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString("| ")
		b.WriteString(strings.Join(row, " | "))
		b.WriteString(" |\n")
	}
	return b.String()
}
