package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.Stddev != 0 {
		t.Errorf("single summary = %+v", s)
	}
	if s.P50 != 3.5 || s.P99 != 3.5 {
		t.Errorf("quantiles = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("mean = %g", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g", s.Stddev)
	}
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if got := quantile(sorted, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %g", got)
	}
	if got := quantile(sorted, 0.9); math.Abs(got-9) > 1e-12 {
		t.Errorf("p90 of {0,10} = %g", got)
	}
}

func TestSummarizeProperties(t *testing.T) {
	f := func(raw []float64) bool {
		// Bound the sample so sums cannot overflow; the summary's
		// contract assumes finite arithmetic.
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "ratio", "bound")
	tbl.AddRow("SA", 2.5, "1+cc+cd")
	tbl.AddRow("DA", 1.9123456, "2+2cc")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "ratio") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "2.5") || !strings.Contains(lines[3], "1.912") {
		t.Errorf("rows:\n%s", out)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("a", "long-header")
	tbl.AddRow("wide-cell-content", 1)
	out := tbl.String()
	lines := strings.Split(out, "\n")
	// The separator must be at least as long as the widest row.
	if len(lines[1]) < len("wide-cell-content") {
		t.Errorf("separator too short:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("alg", "ratio")
	tbl.AddRow("SA", 2.5)
	md := tbl.Markdown()
	want := "| alg | ratio |\n|---|---|\n| SA | 2.5 |\n"
	if md != want {
		t.Errorf("Markdown = %q, want %q", md, want)
	}
}
