package model

// Text encodings for the model types, so schedules and sets serialize
// cleanly in JSON documents, flags, and trace files. The wire format is the
// paper's own notation (e.g. "w2 r4 w3" and "{1,2,3}"), which String and
// the Parse functions already speak.

// MarshalText implements encoding.TextMarshaler.
func (s Set) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Set) UnmarshalText(text []byte) error {
	parsed, err := ParseSet(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (r Request) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (r *Request) UnmarshalText(text []byte) error {
	sched, err := ParseSchedule(string(text))
	if err != nil {
		return err
	}
	if len(sched) != 1 {
		return &Violation{Index: -1, Reason: "expected exactly one request"}
	}
	*r = sched[0]
	return nil
}

// MarshalText implements encoding.TextMarshaler.
func (s Schedule) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (s *Schedule) UnmarshalText(text []byte) error {
	parsed, err := ParseSchedule(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}
