package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetAndContains(t *testing.T) {
	s := NewSet(1, 3, 5)
	for id := ProcessorID(0); id < 8; id++ {
		want := id == 1 || id == 3 || id == 5
		if got := s.Contains(id); got != want {
			t.Errorf("Contains(%d) = %v, want %v", id, got, want)
		}
	}
	if s.Size() != 3 {
		t.Errorf("Size = %d, want 3", s.Size())
	}
}

func TestEmptySet(t *testing.T) {
	if !EmptySet.IsEmpty() {
		t.Error("EmptySet.IsEmpty() = false")
	}
	if EmptySet.Size() != 0 {
		t.Errorf("EmptySet.Size() = %d", EmptySet.Size())
	}
	if EmptySet.String() != "{}" {
		t.Errorf("EmptySet.String() = %q", EmptySet.String())
	}
}

func TestFullSet(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64} {
		s := FullSet(n)
		if s.Size() != n {
			t.Errorf("FullSet(%d).Size() = %d", n, s.Size())
		}
	}
}

func TestFullSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FullSet(65) did not panic")
		}
	}()
	FullSet(65)
}

func TestAddRemove(t *testing.T) {
	s := EmptySet.Add(7)
	if !s.Contains(7) {
		t.Error("Add(7) not contained")
	}
	s = s.Remove(7)
	if s.Contains(7) {
		t.Error("Remove(7) still contained")
	}
	// Removing an absent element is a no-op.
	if got := NewSet(1).Remove(2); got != NewSet(1) {
		t.Errorf("Remove absent: got %v", got)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(0, 1, 2)
	b := NewSet(2, 3)
	if got := a.Union(b); got != NewSet(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewSet(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != NewSet(0, 1) {
		t.Errorf("Diff = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false")
	}
	if a.Intersects(NewSet(5)) {
		t.Error("Intersects disjoint = true")
	}
	if !NewSet(1).SubsetOf(a) {
		t.Error("SubsetOf = false")
	}
	if a.SubsetOf(b) {
		t.Error("a.SubsetOf(b) = true")
	}
}

func TestMinAndMember(t *testing.T) {
	s := NewSet(4, 9, 17)
	if s.Min() != 4 {
		t.Errorf("Min = %d", s.Min())
	}
	want := []ProcessorID{4, 9, 17}
	for k, w := range want {
		if got := s.Member(k); got != w {
			t.Errorf("Member(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min of empty set did not panic")
		}
	}()
	EmptySet.Min()
}

func TestMembersAndForEach(t *testing.T) {
	s := NewSet(3, 1, 2)
	got := s.Members()
	want := []ProcessorID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Members[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	var seen []ProcessorID
	s.ForEach(func(id ProcessorID) { seen = append(seen, id) })
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Errorf("ForEach order = %v", seen)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []Set{EmptySet, NewSet(0), NewSet(1, 2, 3), NewSet(0, 63), FullSet(10)}
	for _, s := range cases {
		parsed, err := ParseSet(s.String())
		if err != nil {
			t.Fatalf("ParseSet(%q): %v", s.String(), err)
		}
		if parsed != s {
			t.Errorf("round trip %v -> %v", s, parsed)
		}
	}
}

func TestParseSetErrors(t *testing.T) {
	for _, bad := range []string{"", "1,2", "{1,2", "1,2}", "{a}", "{-1}", "{64}"} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%q): expected error", bad)
		}
	}
}

func TestSubsets(t *testing.T) {
	s := NewSet(0, 2, 5)
	count := 0
	seen := map[Set]bool{}
	s.Subsets(func(sub Set) {
		count++
		if !sub.SubsetOf(s) {
			t.Errorf("subset %v not subset of %v", sub, s)
		}
		if seen[sub] {
			t.Errorf("subset %v enumerated twice", sub)
		}
		seen[sub] = true
	})
	if count != 8 {
		t.Errorf("enumerated %d subsets, want 8", count)
	}
}

// Property: union is commutative, associative; de Morgan via Diff.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(a, b, c Set) bool {
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			return false
		}
		if a.Intersect(b) != b.Intersect(a) {
			return false
		}
		// |A ∪ B| = |A| + |B| - |A ∩ B|
		if a.Union(b).Size() != a.Size()+b.Size()-a.Intersect(b).Size() {
			return false
		}
		// A \ B ⊆ A and disjoint from B
		d := a.Diff(b)
		return d.SubsetOf(a) && !d.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Add then Contains; Remove then !Contains.
func TestAddRemoveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		s := Set(rng.Uint64())
		id := ProcessorID(rng.Intn(MaxProcessors))
		if !s.Add(id).Contains(id) {
			t.Fatalf("Add(%d) not contained in %v", id, s)
		}
		if s.Remove(id).Contains(id) {
			t.Fatalf("Remove(%d) still contained in %v", id, s)
		}
		if s.Add(id).Size() != s.Size()+boolToInt(!s.Contains(id)) {
			t.Fatalf("Add size mismatch")
		}
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSortedIDs(t *testing.T) {
	got := SortedIDs([]ProcessorID{5, 1, 3})
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("SortedIDs = %v", got)
	}
}
