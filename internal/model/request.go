package model

import (
	"fmt"
	"strings"
)

// Op is the kind of an access request.
type Op int

const (
	// Read is a read request: the issuing processor needs the latest
	// version of the object in main memory.
	Read Op = iota
	// Write is a write request: the issuing processor creates a new
	// version of the object.
	Write
)

// String returns "r" or "w", matching the paper's notation.
func (o Op) String() string {
	switch o {
	case Read:
		return "r"
	case Write:
		return "w"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Request is a single access request in a schedule: an operation together
// with the processor that issued it. In the paper's notation a request is
// written r^i or w^i, e.g. w2 is a write issued by processor 2.
type Request struct {
	Op        Op
	Processor ProcessorID
}

// R returns a read request issued by processor p.
func R(p ProcessorID) Request { return Request{Op: Read, Processor: p} }

// W returns a write request issued by processor p.
func W(p ProcessorID) Request { return Request{Op: Write, Processor: p} }

// IsRead reports whether the request is a read.
func (r Request) IsRead() bool { return r.Op == Read }

// IsWrite reports whether the request is a write.
func (r Request) IsWrite() bool { return r.Op == Write }

// String renders the request in the paper's notation, e.g. "r4" or "w2".
func (r Request) String() string {
	return fmt.Sprintf("%s%d", r.Op, int(r.Processor))
}

// Schedule is a finite sequence of read-write requests to a single object,
// totally ordered by the system's concurrency-control mechanism (§3.1).
type Schedule []Request

// ParseSchedule parses a whitespace-separated sequence of requests in the
// paper's notation, e.g. "w2 r4 w3 r1 r2". It is the inverse of
// Schedule.String.
func ParseSchedule(text string) (Schedule, error) {
	fields := strings.Fields(text)
	sched := make(Schedule, 0, len(fields))
	for _, f := range fields {
		if len(f) < 2 {
			return nil, fmt.Errorf("model: malformed request %q", f)
		}
		var op Op
		switch f[0] {
		case 'r':
			op = Read
		case 'w':
			op = Write
		default:
			return nil, fmt.Errorf("model: malformed request %q: operation must be r or w", f)
		}
		var id int
		if _, err := fmt.Sscanf(f[1:], "%d", &id); err != nil {
			return nil, fmt.Errorf("model: malformed request %q: %v", f, err)
		}
		if id < 0 || id >= MaxProcessors {
			return nil, fmt.Errorf("model: processor id %d out of range [0,%d)", id, MaxProcessors)
		}
		sched = append(sched, Request{Op: op, Processor: ProcessorID(id)})
	}
	return sched, nil
}

// MustParseSchedule is like ParseSchedule but panics on error.
// It is intended for tests and package-level examples.
func MustParseSchedule(text string) Schedule {
	s, err := ParseSchedule(text)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the schedule in the paper's notation, e.g. "w2 r4 w3 r1 r2".
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, " ")
}

// Processors returns the set of processors that issue at least one request
// in the schedule.
func (s Schedule) Processors() Set {
	var set Set
	for _, r := range s {
		set = set.Add(r.Processor)
	}
	return set
}

// Reads returns the number of read requests in the schedule.
func (s Schedule) Reads() int {
	n := 0
	for _, r := range s {
		if r.IsRead() {
			n++
		}
	}
	return n
}

// Writes returns the number of write requests in the schedule.
func (s Schedule) Writes() int { return len(s) - s.Reads() }

// Clone returns a deep copy of the schedule.
func (s Schedule) Clone() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}
