package model

import (
	"encoding/json"
	"testing"
)

func TestSetJSONRoundTrip(t *testing.T) {
	type doc struct {
		Scheme Set `json:"scheme"`
	}
	in := doc{Scheme: NewSet(1, 2, 5)}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"scheme":"{1,2,5}"}` {
		t.Errorf("marshal = %s", raw)
	}
	var out doc
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Scheme != in.Scheme {
		t.Errorf("round trip %v -> %v", in.Scheme, out.Scheme)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	type doc struct {
		Trace Schedule `json:"trace"`
	}
	in := doc{Trace: MustParseSchedule("w2 r4 w3 r1 r2")}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out doc
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace.String() != in.Trace.String() {
		t.Errorf("round trip %q -> %q", in.Trace, out.Trace)
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	raw, err := json.Marshal(W(7))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `"w7"` {
		t.Errorf("marshal = %s", raw)
	}
	var r Request
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if r != W(7) {
		t.Errorf("round trip = %v", r)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s Set
	if err := s.UnmarshalText([]byte("not-a-set")); err == nil {
		t.Error("bad set accepted")
	}
	var r Request
	if err := r.UnmarshalText([]byte("r1 r2")); err == nil {
		t.Error("two requests accepted as one")
	}
	if err := r.UnmarshalText([]byte("zz")); err == nil {
		t.Error("garbage request accepted")
	}
	var sched Schedule
	if err := sched.UnmarshalText([]byte("r1 xx")); err == nil {
		t.Error("garbage schedule accepted")
	}
}
