package model

import (
	"math/rand"
	"strings"
	"testing"
)

// The running example from §3.1:
// τ0 = w2{2,3} r4{1,2} w3{2,3} r1{1,2} r2{2}, and the variant τ̄0 in which
// the fourth request is a saving-read.
func paperAllocSchedule(savingFourth bool) AllocSchedule {
	return AllocSchedule{
		{Request: W(2), Exec: NewSet(2, 3)},
		{Request: R(4), Exec: NewSet(1, 2)},
		{Request: W(3), Exec: NewSet(2, 3)},
		{Request: R(1), Exec: NewSet(1, 2), Saving: savingFourth},
		{Request: R(2), Exec: NewSet(2)},
	}
}

func TestSchemeEvolutionPaperExample(t *testing.T) {
	// §3.1: with initial allocation scheme {3,4}, the scheme at the first
	// request is {3,4}; at the second, third and fourth requests it is
	// {2,3}; at the fifth request it is {1,2,3} (after the saving-read).
	a := paperAllocSchedule(true)
	initial := NewSet(3, 4)
	wants := []Set{NewSet(3, 4), NewSet(2, 3), NewSet(2, 3), NewSet(2, 3), NewSet(1, 2, 3)}
	for i, want := range wants {
		if got := a.SchemeAt(i, initial); got != want {
			t.Errorf("scheme at request %d = %v, want %v", i+1, got, want)
		}
	}
	// After the whole schedule the object is stored at {1,2,3}.
	if got := a.FinalScheme(initial); got != NewSet(1, 2, 3) {
		t.Errorf("final scheme = %v, want {1,2,3}", got)
	}
}

func TestLegalityPaperExample(t *testing.T) {
	// τ̄0 is legal, but becomes illegal if the execution set of the last
	// request r2 is changed from {2} to {4} (§3.1).
	a := paperAllocSchedule(true)
	if err := a.Validate(NewSet(3, 4), 2); err != nil {
		t.Errorf("paper allocation schedule should be legal: %v", err)
	}
	bad := a.Clone()
	bad[4].Exec = NewSet(4)
	err := bad.Validate(NewSet(3, 4), 2)
	if err == nil {
		t.Fatal("illegal variant validated")
	}
	if v, ok := err.(*Violation); !ok || v.Index != 4 {
		t.Errorf("violation = %v, want at step 4", err)
	}
}

func TestValidateInitialScheme(t *testing.T) {
	a := AllocSchedule{}
	if err := a.Validate(NewSet(1), 2); err == nil {
		t.Error("initial scheme below t validated")
	}
	if err := a.Validate(NewSet(1, 2), 2); err != nil {
		t.Errorf("valid empty schedule rejected: %v", err)
	}
}

func TestValidateEmptyExecSet(t *testing.T) {
	a := AllocSchedule{{Request: R(1), Exec: EmptySet}}
	if err := a.Validate(NewSet(1, 2), 2); err == nil {
		t.Error("empty execution set validated")
	}
}

func TestValidateWriteBelowT(t *testing.T) {
	a := AllocSchedule{{Request: W(1), Exec: NewSet(1)}}
	if err := a.Validate(NewSet(1, 2), 2); err == nil {
		t.Error("write shrinking scheme below t validated")
	}
	ok := AllocSchedule{{Request: W(1), Exec: NewSet(1, 3)}}
	if err := ok.Validate(NewSet(1, 2), 2); err != nil {
		t.Errorf("valid write rejected: %v", err)
	}
}

func TestValidateSavingWrite(t *testing.T) {
	a := AllocSchedule{{Request: W(1), Exec: NewSet(1, 2), Saving: true}}
	if err := a.Validate(NewSet(1, 2), 2); err == nil {
		t.Error("saving write validated")
	}
}

func TestCorrespondsTo(t *testing.T) {
	a := paperAllocSchedule(true)
	if !a.CorrespondsTo(MustParseSchedule("w2 r4 w3 r1 r2")) {
		t.Error("CorrespondsTo = false for corresponding schedule")
	}
	if a.CorrespondsTo(MustParseSchedule("w2 r4 w3 r1")) {
		t.Error("CorrespondsTo = true for shorter schedule")
	}
	if a.CorrespondsTo(MustParseSchedule("w2 r4 w3 r1 r3")) {
		t.Error("CorrespondsTo = true for different request")
	}
}

func TestStepString(t *testing.T) {
	st := Step{Request: R(4), Exec: NewSet(1, 2)}
	if st.String() != "r4{1,2}" {
		t.Errorf("String = %q", st.String())
	}
	st.Saving = true
	if st.String() != "R4{1,2}" {
		t.Errorf("saving String = %q", st.String())
	}
	w := Step{Request: W(2), Exec: NewSet(2, 3)}
	if w.String() != "w2{2,3}" {
		t.Errorf("write String = %q", w.String())
	}
}

func TestAllocScheduleString(t *testing.T) {
	a := paperAllocSchedule(true)
	s := a.String()
	if !strings.Contains(s, "R1{1,2}") || !strings.Contains(s, "w2{2,3}") {
		t.Errorf("String = %q", s)
	}
}

func TestSchemeAtPanics(t *testing.T) {
	a := paperAllocSchedule(false)
	defer func() {
		if recover() == nil {
			t.Error("SchemeAt out of range did not panic")
		}
	}()
	a.SchemeAt(len(a)+1, NewSet(3, 4))
}

// Property: the scheme after a step is always related to the scheme before
// it per NextScheme, and validation implies every intermediate scheme has
// size >= t.
func TestValidateImpliesTAvailable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, tAvail = 6, 2
	for iter := 0; iter < 200; iter++ {
		// Generate a random allocation schedule (not necessarily valid).
		initial := randomScheme(rng, n, 1)
		var a AllocSchedule
		for i := 0; i < 12; i++ {
			p := ProcessorID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				a = append(a, Step{Request: R(p), Exec: randomScheme(rng, n, 1), Saving: rng.Intn(2) == 0})
			} else {
				a = append(a, Step{Request: W(p), Exec: randomScheme(rng, n, 1)})
			}
		}
		if err := a.Validate(initial, tAvail); err == nil {
			scheme := initial
			for i, st := range a {
				if st.Request.IsRead() && !st.Exec.Intersects(scheme) {
					t.Fatalf("iter %d step %d: validated but illegal read", iter, i)
				}
				scheme = NextScheme(scheme, st)
				if scheme.Size() < tAvail {
					t.Fatalf("iter %d step %d: validated but scheme %v below t", iter, i, scheme)
				}
			}
		}
	}
}

func randomScheme(rng *rand.Rand, n, minSize int) Set {
	for {
		var s Set
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s = s.Add(ProcessorID(i))
			}
		}
		if s.Size() >= minSize {
			return s
		}
	}
}

func TestAllocScheduleScheduleConversion(t *testing.T) {
	a := paperAllocSchedule(true)
	s := a.Schedule()
	if s.String() != "w2 r4 w3 r1 r2" {
		t.Errorf("Schedule() = %q", s.String())
	}
}

func TestAllocScheduleClone(t *testing.T) {
	a := paperAllocSchedule(false)
	c := a.Clone()
	c[0].Exec = NewSet(9)
	if a[0].Exec != NewSet(2, 3) {
		t.Error("Clone aliases original")
	}
}
