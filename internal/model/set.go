// Package model implements the formal model of Huang & Wolfson (ICDE 1994):
// processors, read/write requests, schedules, execution sets, allocation
// schedules with saving-reads, allocation schemes, legality and
// t-availability constraints.
//
// The model is deliberately independent of any particular cost function
// (package cost) and of any particular distributed object management
// algorithm (package dom): it only describes *what happened* — which
// requests were issued, which processors executed each of them, and which
// reads saved the object locally.
package model

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxProcessors is the largest number of processors a Set can hold.
// Allocation schemes are 64-bit bitsets; the exact offline optimum
// (package opt) further restricts itself to about 16 processors because its
// state space is 2^n.
const MaxProcessors = 64

// ProcessorID identifies a processor in the distributed system.
// Processors are numbered 0..n-1.
type ProcessorID int

// Set is a set of processors, represented as a 64-bit bitset.
// The zero value is the empty set. Set is a value type: all methods return
// new sets rather than mutating the receiver.
type Set uint64

// EmptySet is the set containing no processors.
const EmptySet Set = 0

// NewSet returns the set containing exactly the given processors.
// It panics if any id is outside [0, MaxProcessors).
func NewSet(ids ...ProcessorID) Set {
	var s Set
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// FullSet returns the set {0, 1, ..., n-1}.
// It panics unless 0 <= n <= MaxProcessors.
func FullSet(n int) Set {
	if n < 0 || n > MaxProcessors {
		panic(fmt.Sprintf("model: FullSet(%d) out of range [0,%d]", n, MaxProcessors))
	}
	if n == MaxProcessors {
		return ^Set(0)
	}
	return Set(1)<<uint(n) - 1
}

func checkID(id ProcessorID) {
	if id < 0 || id >= MaxProcessors {
		panic(fmt.Sprintf("model: processor id %d out of range [0,%d)", id, MaxProcessors))
	}
}

// Add returns s ∪ {id}.
func (s Set) Add(id ProcessorID) Set {
	checkID(id)
	return s | Set(1)<<uint(id)
}

// Remove returns s \ {id}.
func (s Set) Remove(id ProcessorID) Set {
	checkID(id)
	return s &^ (Set(1) << uint(id))
}

// Contains reports whether id ∈ s.
func (s Set) Contains(id ProcessorID) bool {
	if id < 0 || id >= MaxProcessors {
		return false
	}
	return s&(Set(1)<<uint(id)) != 0
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Diff returns s \ t.
func (s Set) Diff(t Set) Set { return s &^ t }

// Size returns |s|.
func (s Set) Size() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether s is the empty set.
func (s Set) IsEmpty() bool { return s == 0 }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set) Intersects(t Set) bool { return s&t != 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Min returns the smallest processor id in s.
// It panics on the empty set.
func (s Set) Min() ProcessorID {
	if s == 0 {
		panic("model: Min of empty Set")
	}
	return ProcessorID(bits.TrailingZeros64(uint64(s)))
}

// Members returns the processors of s in increasing order.
func (s Set) Members() []ProcessorID {
	out := make([]ProcessorID, 0, s.Size())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, ProcessorID(bits.TrailingZeros64(v)))
	}
	return out
}

// ForEach calls fn for every member of s in increasing order.
func (s Set) ForEach(fn func(ProcessorID)) {
	for v := uint64(s); v != 0; v &= v - 1 {
		fn(ProcessorID(bits.TrailingZeros64(v)))
	}
}

// String renders the set in the paper's notation, e.g. "{1,2,3}".
func (s Set) String() string {
	ids := s.Members()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ParseSet parses the notation produced by String, e.g. "{0,3,5}" or "{}".
func ParseSet(text string) (Set, error) {
	t := strings.TrimSpace(text)
	if !strings.HasPrefix(t, "{") || !strings.HasSuffix(t, "}") {
		return 0, fmt.Errorf("model: malformed set %q: missing braces", text)
	}
	inner := strings.TrimSpace(t[1 : len(t)-1])
	if inner == "" {
		return EmptySet, nil
	}
	var s Set
	for _, field := range strings.Split(inner, ",") {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(field), "%d", &id); err != nil {
			return 0, fmt.Errorf("model: malformed set %q: bad element %q", text, field)
		}
		if id < 0 || id >= MaxProcessors {
			return 0, fmt.Errorf("model: set element %d out of range [0,%d)", id, MaxProcessors)
		}
		s = s.Add(ProcessorID(id))
	}
	return s, nil
}

// Subsets enumerates every subset of s (including the empty set and s
// itself) and calls fn on each. Enumeration order is unspecified.
func (s Set) Subsets(fn func(Set)) {
	// Standard submask enumeration: iterate sub = (sub-1) & s.
	sub := uint64(s)
	for {
		fn(Set(sub))
		if sub == 0 {
			return
		}
		sub = (sub - 1) & uint64(s)
	}
}

// RandomMember returns the k-th member (0-based, in increasing order) of s.
// It panics if k is out of range. It is used by deterministic "pick some
// member" policies that want a seeded choice rather than always Min.
func (s Set) Member(k int) ProcessorID {
	if k < 0 || k >= s.Size() {
		panic(fmt.Sprintf("model: Member(%d) of set with %d members", k, s.Size()))
	}
	v := uint64(s)
	for i := 0; i < k; i++ {
		v &= v - 1
	}
	return ProcessorID(bits.TrailingZeros64(v))
}

// SortedIDs is a convenience to sort a slice of processor ids in place and
// return it.
func SortedIDs(ids []ProcessorID) []ProcessorID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
