package model

import (
	"testing"
)

func TestRequestString(t *testing.T) {
	if got := R(4).String(); got != "r4" {
		t.Errorf("R(4) = %q", got)
	}
	if got := W(2).String(); got != "w2" {
		t.Errorf("W(2) = %q", got)
	}
}

func TestRequestPredicates(t *testing.T) {
	if !R(0).IsRead() || R(0).IsWrite() {
		t.Error("R(0) predicates wrong")
	}
	if !W(0).IsWrite() || W(0).IsRead() {
		t.Error("W(0) predicates wrong")
	}
}

func TestParseSchedulePaperExample(t *testing.T) {
	// ψ0 = w2 r4 w3 r1 r2 from §3.1.
	s, err := ParseSchedule("w2 r4 w3 r1 r2")
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule{W(2), R(4), W(3), R(1), R(2)}
	if len(s) != len(want) {
		t.Fatalf("len = %d", len(s))
	}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	if s.String() != "w2 r4 w3 r1 r2" {
		t.Errorf("String = %q", s.String())
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, bad := range []string{"x2", "r", "rx", "r-1", "r64", "w2 q3"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q): expected error", bad)
		}
	}
}

func TestMustParseSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseSchedule did not panic on bad input")
		}
	}()
	MustParseSchedule("zz")
}

func TestScheduleStats(t *testing.T) {
	s := MustParseSchedule("w2 r4 w3 r1 r2")
	if s.Reads() != 3 {
		t.Errorf("Reads = %d", s.Reads())
	}
	if s.Writes() != 2 {
		t.Errorf("Writes = %d", s.Writes())
	}
	if got := s.Processors(); got != NewSet(1, 2, 3, 4) {
		t.Errorf("Processors = %v", got)
	}
}

func TestScheduleClone(t *testing.T) {
	s := MustParseSchedule("r1 w2")
	c := s.Clone()
	c[0] = W(9)
	if s[0] != R(1) {
		t.Error("Clone aliases original")
	}
}

func TestEmptySchedule(t *testing.T) {
	s, err := ParseSchedule("")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 0 || s.Reads() != 0 || s.Writes() != 0 {
		t.Error("empty schedule stats wrong")
	}
	if !s.Processors().IsEmpty() {
		t.Error("empty schedule has processors")
	}
}
