package model

import (
	"testing"
)

// FuzzParseSchedule checks that the parser never panics and that parsing
// round-trips through String for every accepted input.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"", "r1", "w2 r4 w3 r1 r2", "r0 w63", "w2  r4\tw3", "r-1", "x5", "r", "w999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sched, err := ParseSchedule(input)
		if err != nil {
			return
		}
		reparsed, err := ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("canonical form %q failed to parse: %v", sched.String(), err)
		}
		if reparsed.String() != sched.String() {
			t.Fatalf("round trip changed: %q -> %q", sched.String(), reparsed.String())
		}
	})
}

// FuzzParseSet mirrors FuzzParseSchedule for the set notation.
func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{"{}", "{0}", "{1,2,3}", "{63}", "{64}", "{a}", "1,2", "{1,2", "{ 5 , 7 }"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSet(input)
		if err != nil {
			return
		}
		reparsed, err := ParseSet(s.String())
		if err != nil {
			t.Fatalf("canonical form %q failed to parse: %v", s.String(), err)
		}
		if reparsed != s {
			t.Fatalf("round trip changed: %v -> %v", s, reparsed)
		}
	})
}
