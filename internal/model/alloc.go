package model

import (
	"fmt"
	"strings"
)

// Step is one element of an allocation schedule: a request, its execution
// set, and — for reads — whether the read is a saving-read (the reading
// processor stores the object in its local database, joining the
// allocation scheme).
type Step struct {
	Request Request
	// Exec is the execution set of the request: for a write, the set of
	// processors that output the new version to their local database
	// (which becomes the new allocation scheme); for a read, the set of
	// processors from which the object is retrieved.
	Exec Set
	// Saving marks a saving-read (underlined read in the paper's
	// notation). It must be false for writes.
	Saving bool
}

// String renders the step as e.g. "r4{1,2}" or "R4{1}" — a saving-read is
// rendered with an upper-case R, standing in for the paper's underline.
func (st Step) String() string {
	op := st.Request.Op.String()
	if st.Saving {
		op = "R"
	}
	return fmt.Sprintf("%s%d%s", op, int(st.Request.Processor), st.Exec)
}

// AllocSchedule is an execution schedule in which some reads may have been
// converted into saving-reads (§3.1): a sequence of requests each with its
// execution set.
type AllocSchedule []Step

// String renders the allocation schedule, e.g. "w2{2,3} r4{1,2} R1{2}".
func (a AllocSchedule) String() string {
	parts := make([]string, len(a))
	for i, st := range a {
		parts[i] = st.String()
	}
	return strings.Join(parts, " ")
}

// Schedule returns the schedule that corresponds to the allocation schedule:
// the same requests with execution sets removed and saving-reads turned back
// into plain reads.
func (a AllocSchedule) Schedule() Schedule {
	out := make(Schedule, len(a))
	for i, st := range a {
		out[i] = st.Request
	}
	return out
}

// SchemeAt returns the allocation scheme at step index i (0-based): the set
// of processors holding the latest version right before step i executes,
// given the initial allocation scheme. SchemeAt(len(a), initial) returns the
// scheme after the whole allocation schedule has executed.
//
// Scheme evolution (§3.1):
//   - a write with execution set X replaces the scheme with X;
//   - a saving-read by processor p adds p to the scheme;
//   - a plain read leaves the scheme unchanged.
func (a AllocSchedule) SchemeAt(i int, initial Set) Set {
	if i < 0 || i > len(a) {
		panic(fmt.Sprintf("model: SchemeAt(%d) on allocation schedule of length %d", i, len(a)))
	}
	scheme := initial
	for _, st := range a[:i] {
		scheme = NextScheme(scheme, st)
	}
	return scheme
}

// NextScheme returns the allocation scheme after executing step st when the
// scheme before st is cur.
func NextScheme(cur Set, st Step) Set {
	switch {
	case st.Request.IsWrite():
		return st.Exec
	case st.Saving:
		return cur.Add(st.Request.Processor)
	default:
		return cur
	}
}

// FinalScheme returns the allocation scheme after the whole allocation
// schedule executes, starting from initial.
func (a AllocSchedule) FinalScheme(initial Set) Set {
	return a.SchemeAt(len(a), initial)
}

// Violation describes why an allocation schedule is not a legal,
// t-available allocation schedule.
type Violation struct {
	// Index is the 0-based step at which the violation occurs, or -1 for
	// violations of the initial scheme.
	Index int
	// Reason is a human-readable explanation.
	Reason string
}

func (v Violation) Error() string {
	if v.Index < 0 {
		return "model: initial scheme: " + v.Reason
	}
	return fmt.Sprintf("model: step %d: %s", v.Index, v.Reason)
}

// Validate checks that the allocation schedule is legal and satisfies the
// t-available constraint, starting from the given initial allocation scheme.
// It returns nil if the schedule is valid, or the first violation found.
//
// The checks, from §3.1:
//
//  1. the initial scheme has at least t members;
//  2. every execution set is non-empty;
//  3. every read's execution set intersects the allocation scheme at the
//     read (legality);
//  4. writes are never marked Saving;
//  5. the allocation scheme at every request — i.e. before every step —
//     and the final scheme have at least t members. For a write this means
//     |Exec| >= t.
func (a AllocSchedule) Validate(initial Set, t int) error {
	if initial.Size() < t {
		return &Violation{Index: -1, Reason: fmt.Sprintf("initial scheme %v has %d members, t-availability requires %d", initial, initial.Size(), t)}
	}
	scheme := initial
	for i, st := range a {
		if st.Exec.IsEmpty() {
			return &Violation{Index: i, Reason: fmt.Sprintf("%v has an empty execution set", st.Request)}
		}
		switch {
		case st.Request.IsRead():
			if !st.Exec.Intersects(scheme) {
				return &Violation{Index: i, Reason: fmt.Sprintf("read %v has execution set %v disjoint from allocation scheme %v", st.Request, st.Exec, scheme)}
			}
		case st.Saving:
			return &Violation{Index: i, Reason: fmt.Sprintf("write %v marked as saving-read", st.Request)}
		}
		scheme = NextScheme(scheme, st)
		if scheme.Size() < t {
			return &Violation{Index: i, Reason: fmt.Sprintf("allocation scheme %v after %v has %d members, t-availability requires %d", scheme, st.Request, scheme.Size(), t)}
		}
	}
	return nil
}

// CorrespondsTo reports whether the allocation schedule corresponds to the
// given schedule: same length, same requests in the same order (§3.1).
func (a AllocSchedule) CorrespondsTo(s Schedule) bool {
	if len(a) != len(s) {
		return false
	}
	for i := range a {
		if a[i].Request != s[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the allocation schedule.
func (a AllocSchedule) Clone() AllocSchedule {
	out := make(AllocSchedule, len(a))
	copy(out, a)
	return out
}
