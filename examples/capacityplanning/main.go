// Capacity planning: choosing an allocation algorithm for a deployment.
//
// A DBA has a trace of last week's accesses to a replicated object and
// three candidate deployments — a campus LAN, a two-site WAN, and a mobile
// network. This example walks the paper-guided decision procedure:
//
//  1. locate each deployment on the (cd, cc) plane and apply figures 1/2
//     (the analytic advisor);
//  2. where the bounds leave the answer open, measure SA and DA on the
//     trace against the offline optimum (the empirical advisor);
//  3. sanity-check the winner's *response time* under the expected load
//     with the shared-bus discrete-event simulator.
//
// Run with:
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"objalloc"
)

func main() {
	log.SetFlags(0)

	const (
		n = 8
		t = 2
	)
	initial := objalloc.NewSet(0, 1)

	// Last week's trace: bursts of reads from the analytics sites 5..7,
	// occasional writes from the ingest sites 0..1.
	rng := rand.New(rand.NewSource(77))
	trace := objalloc.UniformWorkload(rng, 2, 60, 1.0) // writes from 0..1
	reads := objalloc.ZipfWorkload(rng, 3, 340, 0, 1.6)
	for i := range reads {
		reads[i] = objalloc.R(reads[i].Processor + 5) // shift to 5..7
	}
	trace = interleave(rng, trace, reads)

	deployments := []struct {
		name string
		m    objalloc.CostModel
	}{
		{"campus LAN (cheap messages)", objalloc.SC(0.05, 0.15)},
		{"two-site WAN (expensive data)", objalloc.SC(0.3, 1.8)},
		{"mobile network (per-message billing)", objalloc.MC(0.2, 1.0)},
	}

	fmt.Printf("trace: %d requests (%d reads, %d writes)\n\n", len(trace), trace.Reads(), trace.Writes())
	for _, d := range deployments {
		fmt.Printf("%s — %v\n", d.name, d.m)
		analytic := objalloc.Advise(d.m)
		fmt.Printf("  figures 1/2 say: %v\n", analytic)

		adv, err := objalloc.AdviseForWorkload(d.m, trace, initial, t)
		if err != nil {
			log.Fatal(err)
		}
		for _, ev := range adv.Evaluations {
			fmt.Printf("  measured %-3s cost %9.1f  (%.3fx the offline optimum)\n", ev.Name, ev.Cost, ev.Ratio)
		}
		fmt.Printf("  recommendation: %s\n\n", adv.Best)
	}

	// Response-time check for the WAN winner on a shared backbone.
	fmt.Println("response-time check (shared bus, expected load 0.6 req/unit):")
	profile := objalloc.LatencyProfile{ControlTime: 0.05, DataTime: 1, PropDelay: 0.1, DiskTime: 0.4, SharedBus: true}
	for _, cand := range []struct {
		name    string
		factory objalloc.Factory
	}{{"SA", objalloc.StaticFactory}, {"DA", objalloc.DynamicFactory}} {
		alg, err := cand.factory(initial, t)
		if err != nil {
			log.Fatal(err)
		}
		las := objalloc.Run(alg, trace)
		res, err := objalloc.SimulateLatency(profile, las, initial, objalloc.UniformArrivals(len(las), 0.6))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s mean %6.2f  p99 %6.2f  bus utilization %4.0f%%\n",
			cand.name, res.Summary.Mean, res.Summary.P99, 100*res.BusUtilization())
	}
}

// interleave randomly merges two schedules, preserving each one's order.
func interleave(rng *rand.Rand, a, b objalloc.Schedule) objalloc.Schedule {
	out := make(objalloc.Schedule, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if i < len(a) && (j >= len(b) || rng.Intn(len(a)+len(b)-i-j) < len(a)-i) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}
