// Append-only object sequences — §6.2 of the paper: a satellite transmits
// an image per minute; each image is received by one earth station and must
// be stored at t or more stations for reliability, while every station
// occasionally reads the latest image.
//
// The paper observes its results apply verbatim to this model: SA is a
// fixed set of t stations with permanent standing orders; DA keeps t−1
// permanent standing orders and lets other stations take temporary
// standing orders (saving-reads) that the next image invalidates.
//
// The example executes both policies on the real message-passing cluster
// with disk-backed local databases, prices them, and verifies the durable
// state: after a crash-free run, re-opening a station's database recovers
// the newest image it stored.
//
// Run with:
//
//	go run ./examples/satellite
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"objalloc"
)

const (
	stations = 6
	t        = 2
)

func main() {
	log.SetFlags(0)

	dir, err := os.MkdirTemp("", "satellite-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rng := rand.New(rand.NewSource(9))
	// 120 images; each is generated at a random station and read by a few
	// stations before the next arrives.
	trace := objalloc.AppendOnlyTrace(rng, stations, 120, 2.5)
	m := objalloc.SC(0.3, 2.0) // images are big: data messages dominate

	fmt.Printf("%d earth stations, %d images, reliability threshold t = %d\n",
		stations, trace.Writes(), t)
	fmt.Printf("cost model %v\n\n", m)

	for _, policy := range []struct {
		name     string
		protocol objalloc.Protocol
	}{
		{"SA: fixed standing orders at 2 stations", objalloc.ProtocolSA},
		{"DA: 1 permanent + temporary standing orders", objalloc.ProtocolDA},
	} {
		sub := filepath.Join(dir, policy.protocol.String())
		cluster, err := objalloc.NewCluster(stations,
			objalloc.WithProtocol(policy.protocol),
			objalloc.WithAvailability(t),
			objalloc.WithInitial(objalloc.NewSet(0, 1)),
			objalloc.WithStores(func(id objalloc.ProcessorID) (objalloc.Store, error) {
				return objalloc.OpenDiskStore(filepath.Join(sub, fmt.Sprintf("station-%d.log", id)), objalloc.DiskOptions{})
			}),
		)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cluster.Run(trace); err != nil {
			log.Fatal(err)
		}
		counts := cluster.Counts()
		scheme := cluster.Scheme()
		cluster.Close()

		fmt.Printf("%s\n", policy.name)
		fmt.Printf("  accounting %v, cost %.1f\n", counts, counts.Price(m))
		fmt.Printf("  stations holding the newest image: %v (>= %d as required)\n", scheme, t)

		// Reliability check: re-open one holder's database from disk and
		// confirm the newest image survived the shutdown.
		holder := scheme.Min()
		store, err := objalloc.OpenDiskStore(filepath.Join(sub, fmt.Sprintf("station-%d.log", holder)), objalloc.DiskOptions{})
		if err != nil {
			log.Fatal(err)
		}
		v, err := store.Get()
		if err != nil {
			log.Fatalf("station %d lost the image: %v", holder, err)
		}
		store.Close()
		fmt.Printf("  durable: station %d recovered image version %d from disk\n\n", holder, v.Seq)
	}

	fmt.Println("With reads clustered between images, DA's temporary standing orders")
	fmt.Println("turn repeat reads local; SA ships the image on every remote read.")
}
