// Collaborative electronic publishing — the paper's §1.1 example: a
// document co-authored from two sites and read from many, managed as a
// multi-object distributed database (one replicated object per document
// section).
//
// Each section is allocated independently by its own DA instance: sections
// that one site reads repeatedly migrate replicas toward it, while the
// write-invalidation protocol keeps every read seeing the latest revision.
// The example contrasts the per-section allocation schemes that emerge from
// skewed readerships, and compares the database's total cost under SA and
// DA management.
//
// Run with:
//
//	go run ./examples/publishing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"objalloc"
)

const (
	n = 10 // processors 0..9: editorial sites 0 and 1, readers 2..9
	t = 2
)

// section describes one document section's access pattern: who reads it
// heavily besides the authors.
type section struct {
	name    string
	hotness map[objalloc.ProcessorID]float64 // reader -> relative read rate
}

func main() {
	log.SetFlags(0)

	sections := []section{
		{"front-page", map[objalloc.ProcessorID]float64{2: 4, 3: 4, 4: 4, 5: 4, 6: 4, 7: 4, 8: 4, 9: 4}},
		{"politics", map[objalloc.ProcessorID]float64{2: 8, 3: 6}},
		{"sports", map[objalloc.ProcessorID]float64{7: 10}},
		{"archive", map[objalloc.ProcessorID]float64{}}, // written, rarely read
	}

	fmt.Println("Electronic publishing: authors at 0 and 1, readers at 2..9")
	fmt.Println()

	for _, mgmt := range []struct {
		name    string
		factory objalloc.Factory
	}{{"SA (read-one-write-all)", objalloc.StaticFactory}, {"DA (dynamic allocation)", objalloc.DynamicFactory}} {
		db, err := objalloc.OpenDB(objalloc.DBConfig{
			Factory: mgmt.factory,
			T:       t,
			Model:   objalloc.SC(0.25, 1.5),
			// Every section starts at the editorial sites.
			Placement: func(string) objalloc.Set { return objalloc.NewSet(0, 1) },
		})
		if err != nil {
			log.Fatal(err)
		}

		rng := rand.New(rand.NewSource(2024))
		for _, sec := range sections {
			applyRevisions(rng, db, sec, 40)
		}

		fmt.Printf("%s:\n", mgmt.name)
		for _, st := range db.AllStats() {
			fmt.Printf("  %-11s %5d requests, cost %8.1f, final scheme %v\n",
				st.Name, st.Requests, st.Cost, st.Scheme)
		}
		fmt.Printf("  total cost: %.1f\n\n", db.TotalCost())
	}

	fmt.Println("DA migrates each section's replicas to its actual readership —")
	fmt.Println("sports ends up cached at site 7, politics at 2 and 3 — while SA")
	fmt.Println("pays a round trip for every remote read, forever.")
}

// applyRevisions drives one section through `revisions` edit-publish-read
// cycles: an author reads then writes, then readers arrive according to the
// section's hotness.
func applyRevisions(rng *rand.Rand, db *objalloc.DB, sec section, revisions int) {
	var readers []objalloc.ProcessorID
	var weights []float64
	var total float64
	for p, w := range sec.hotness {
		readers = append(readers, p)
		weights = append(weights, w)
		total += w
	}
	for rev := 0; rev < revisions; rev++ {
		author := objalloc.ProcessorID(rng.Intn(2))
		must(db.Read(sec.name, author))
		must(db.Write(sec.name, author))
		// A geometric number of reads proportional to total hotness.
		reads := int(total/2) + rng.Intn(int(total/2)+1)
		for i := 0; i < reads; i++ {
			x := rng.Float64() * total
			for j, w := range weights {
				x -= w
				if x < 0 {
					must(db.Read(sec.name, readers[j]))
					break
				}
			}
		}
	}
}

func must(_ float64, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
