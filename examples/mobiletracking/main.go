// Mobile user location tracking — the paper's motivating mobile-computing
// deployment (§1.1, §2): the replicated object is a mobile user's location;
// it is written whenever the user moves and read whenever a caller needs to
// route to the user.
//
// Per §2, the natural configuration is t = 2 with DA's core F consisting of
// the base station (processor 0): every location update is stored at the
// moving user and propagated to the base station, which invalidates the
// cached copies on all the other mobile processors; lookups cache the
// location locally so repeated calls cost nothing until the next move.
//
// The example prices SA and DA under the mobile-computing cost model
// (I/O free, wireless messages billed) across lookup/move ratios, showing
// the regime where dynamic allocation's caching pays off — and that SA's
// cost diverges as lookups concentrate, which is Proposition 3 in action.
// It also demonstrates the §2 failure story: the base station crashes,
// the system degrades to quorum consensus, and recovers.
//
// Run with:
//
//	go run ./examples/mobiletracking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"objalloc"
)

func main() {
	log.SetFlags(0)

	const (
		n = 8 // base station (0), the tracked user (1), six callers (2..7)
		t = 2
	)
	initial := objalloc.NewSet(0, 1) // F = {base station}, p = the user
	m := objalloc.MC(0.2, 1.0)       // wireless: control 0.2, data 1.0, I/O free

	fmt.Println("Mobile location tracking: base station = 0, user = 1, callers = 2..7")
	fmt.Printf("cost model %v (per-message billing, I/O free)\n\n", m)

	fmt.Println("wireless cost per scenario (100 moves each):")
	fmt.Printf("%22s  %10s  %10s  %10s\n", "lookups per move", "SA cost", "DA cost", "DA saves")
	for _, lookups := range []float64{0.5, 2, 4, 8, 16} {
		rng := rand.New(rand.NewSource(42))
		trace := objalloc.MobileTrace(rng, n, 100, lookups)

		costs := map[string]float64{}
		for name, factory := range map[string]objalloc.Factory{
			"SA": objalloc.StaticFactory, "DA": objalloc.DynamicFactory,
		} {
			alg, err := factory(initial, t)
			if err != nil {
				log.Fatal(err)
			}
			las := objalloc.Run(alg, trace)
			costs[name] = objalloc.ScheduleCost(m, las, initial)
		}
		fmt.Printf("%22.1f  %10.1f  %10.1f  %9.1f%%\n",
			lookups, costs["SA"], costs["DA"], 100*(1-costs["DA"]/costs["SA"]))
	}

	// Execute the protocol for real, with the base station failing
	// mid-flight — the §2 failure handling.
	fmt.Println("\nexecuting DA with base-station failure and recovery:")
	h, err := objalloc.NewHACluster(n, objalloc.WithAvailability(t), objalloc.WithInitial(initial))
	if err != nil {
		log.Fatal(err)
	}
	defer h.Close()

	rng := rand.New(rand.NewSource(7))
	trace := objalloc.MobileTrace(rng, n, 60, 4)
	for i, q := range trace {
		switch i {
		case len(trace) / 3:
			if err := h.Crash(0); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  request %3d: base station down -> mode %v (lookups still served)\n", i, h.Mode())
		case 2 * len(trace) / 3:
			if err := h.Restart(0); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  request %3d: base station back, missed writes recovered -> mode %v\n", i, h.Mode())
		}
		var err error
		if q.IsRead() {
			_, err = h.Read(q.Processor)
		} else {
			_, err = h.Write(q.Processor, []byte(fmt.Sprintf("cell-%d", i)))
		}
		if err != nil {
			log.Fatalf("request %d (%v): %v", i, q, err)
		}
	}
	fmt.Printf("  served all %d requests; final mode %v; wireless bill %.1f\n",
		len(trace), h.Mode(), h.Cost(m))
}
