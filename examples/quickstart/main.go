// Quickstart: the core loop of the objalloc library in one file.
//
// It builds the paper's two online algorithms (static and dynamic
// allocation), runs them on a small schedule of read-write requests, prices
// both under the stationary-computing cost model, compares them against the
// exact offline optimum, and then executes the same schedule on the real
// message-passing cluster to show the executed protocol bills exactly what
// the analysis predicts.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"objalloc"
)

func main() {
	log.SetFlags(0)

	// A schedule in the paper's notation: w2 = write by processor 2,
	// r4 = read by processor 4. Processor ids start at 0.
	sched := objalloc.MustParseSchedule("w2 r4 r4 r3 w0 r4 r4 r4")

	// The availability constraint: at least t = 2 processors must hold
	// the latest version at all times. The initial allocation scheme is
	// {0, 1}: for DA that means core F = {0} and designated p = 1.
	const t = 2
	initial := objalloc.NewSet(0, 1)

	// The stationary-computing cost model: one I/O costs 1, a control
	// message 0.3, a data message 1.2 (cd > 1, so the paper predicts
	// dynamic allocation wins in the worst case).
	m := objalloc.SC(0.3, 1.2)

	fmt.Printf("schedule: %v\n", sched)
	fmt.Printf("cost model: %v, t = %d, initial scheme %v\n\n", m, t, initial)

	// 1. Run SA and DA analytically and price their allocation schedules.
	for _, mk := range []struct {
		name string
		new  func(objalloc.Set, int) (objalloc.Algorithm, error)
	}{{"SA", objalloc.NewStatic}, {"DA", objalloc.NewDynamic}} {
		alg, err := mk.new(initial, t)
		if err != nil {
			log.Fatal(err)
		}
		las := objalloc.Run(alg, sched)
		fmt.Printf("%s allocation schedule: %v\n", mk.name, las)
		fmt.Printf("%s cost: %.2f (final scheme %v)\n\n", mk.name,
			objalloc.ScheduleCost(m, las, initial), alg.Scheme())
	}

	// 2. The offline optimum — the yardstick of the competitive analysis.
	res, err := objalloc.OptimalContext(context.Background(), m, sched, initial, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimum: %.2f via %v\n\n", res.Cost, res.Alloc)

	// 3. Competitive ratios against the paper's proven bounds.
	for _, f := range []struct {
		name    string
		factory objalloc.Factory
		bound   float64
	}{
		{"SA", objalloc.StaticFactory, objalloc.SABound(m)},
		{"DA", objalloc.DynamicFactory, objalloc.DABound(m)},
	} {
		meas, err := objalloc.Ratio(m, f.factory, sched, initial, t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s ratio on this schedule: %.3f (paper's worst-case bound %.2f)\n",
			f.name, meas.Ratio, f.bound)
	}

	// 4. Execute the same schedule on the real distributed system: one
	// goroutine per processor, billed messages, local databases.
	cluster, err := objalloc.NewCluster(5,
		objalloc.WithProtocol(objalloc.ProtocolDA),
		objalloc.WithAvailability(t),
		objalloc.WithInitial(initial),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Run(sched); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted DA protocol accounting: %v\n", cluster.Counts())
	fmt.Printf("executed DA protocol cost:      %.2f\n", cluster.Cost(m))
	fmt.Printf("cluster allocation scheme:      %v\n", cluster.Scheme())
}
