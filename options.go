package objalloc

import (
	"objalloc/internal/ha"
	"objalloc/internal/quorum"
	"objalloc/internal/sim"
)

// ClusterOption configures a cluster built by NewCluster,
// NewQuorumCluster or NewHACluster. Options that do not apply to the
// cluster kind being built (WithProtocol on a quorum cluster, WithQuorums
// on a plain one) are ignored, so option sets can be shared across kinds.
type ClusterOption func(*clusterOptions)

type clusterOptions struct {
	protocol   Protocol
	t          int
	initial    Set
	hasInitial bool
	newStore   func(id ProcessorID) (Store, error)
	obs        *Obs
	faults     *FaultPlan
	retry      RetryPolicy
	seed       uint64
	hasSeed    bool

	readQ, writeQ int
	weights       []int
	preload       bool
	readRepair    bool
}

func buildClusterOptions(opts []ClusterOption) clusterOptions {
	o := clusterOptions{protocol: ProtocolDA, t: 2}
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// resolvedInitial is the initial allocation scheme: WithInitial's set, or
// {0..t-1}.
func (o *clusterOptions) resolvedInitial() Set {
	if o.hasInitial {
		return o.initial
	}
	return FullSet(o.t)
}

// resolvedFaults is the fault plan with any WithSeed override applied.
func (o *clusterOptions) resolvedFaults() *FaultPlan {
	if o.faults == nil {
		return nil
	}
	plan := *o.faults
	if o.hasSeed {
		plan.Seed = o.seed
	}
	return &plan
}

// WithProtocol selects SA or DA (plain clusters; default ProtocolDA).
func WithProtocol(p Protocol) ClusterOption {
	return func(o *clusterOptions) { o.protocol = p }
}

// WithAvailability sets the availability threshold t (default 2).
func WithAvailability(t int) ClusterOption {
	return func(o *clusterOptions) { o.t = t }
}

// WithInitial sets the initial allocation scheme; the default is
// {0..t-1}.
func WithInitial(s Set) ClusterOption {
	return func(o *clusterOptions) { o.initial = s; o.hasInitial = true }
}

// WithStores overrides the per-processor local database, e.g. disk-backed
// stores via OpenDiskStore; the default is in-memory stores.
func WithStores(newStore func(id ProcessorID) (Store, error)) ClusterOption {
	return func(o *clusterOptions) { o.newStore = newStore }
}

// WithObs attaches the instrumentation bundle.
func WithObs(obs *Obs) ClusterOption {
	return func(o *clusterOptions) { o.obs = obs }
}

// WithFaults installs a deterministic fault plan on the cluster's network
// and engages the retransmission discipline (unless WithRetryPolicy
// disables it).
func WithFaults(plan FaultPlan) ClusterOption {
	return func(o *clusterOptions) { o.faults = &plan }
}

// WithRetryPolicy tunes the retransmission discipline.
func WithRetryPolicy(r RetryPolicy) ClusterOption {
	return func(o *clusterOptions) { o.retry = r }
}

// WithSeed overrides the fault plan's seed, giving a replayable variant
// of the same plan; it has no effect without WithFaults.
func WithSeed(seed uint64) ClusterOption {
	return func(o *clusterOptions) { o.seed = seed; o.hasSeed = true }
}

// WithQuorums sets explicit read/write quorum sizes (quorum clusters;
// zero means majority).
func WithQuorums(read, write int) ClusterOption {
	return func(o *clusterOptions) { o.readQ, o.writeQ = read, write }
}

// WithWeights assigns per-processor voting weights (quorum clusters).
func WithWeights(weights ...int) ClusterOption {
	return func(o *clusterOptions) { o.weights = weights }
}

// WithPreload installs version 1 on every processor at start (quorum
// clusters), modeling a fresh statically replicated system.
func WithPreload(on bool) ClusterOption {
	return func(o *clusterOptions) { o.preload = on }
}

// WithReadRepair makes quorum reads push the latest version to stale
// voters they discover.
func WithReadRepair(on bool) ClusterOption {
	return func(o *clusterOptions) { o.readRepair = on }
}

// NewCluster builds and starts a simulated distributed system of n
// processors: one goroutine per processor, a billed message network, and
// per-processor local databases. By default it runs DA with t = 2 and
// initial scheme {0..t-1}; see the ClusterOption family.
func NewCluster(n int, opts ...ClusterOption) (*Cluster, error) {
	o := buildClusterOptions(opts)
	return sim.New(sim.Config{
		N:        n,
		T:        o.t,
		Protocol: o.protocol,
		Initial:  o.resolvedInitial(),
		NewStore: o.newStore,
		Obs:      o.obs,
		Faults:   o.resolvedFaults(),
		Retry:    o.retry,
	})
}

// NewQuorumCluster builds and starts a majority/weighted-voting
// replicated system of n processors.
func NewQuorumCluster(n int, opts ...ClusterOption) (*QuorumCluster, error) {
	o := buildClusterOptions(opts)
	return quorum.New(quorum.Config{
		N:           n,
		ReadQuorum:  o.readQ,
		WriteQuorum: o.writeQ,
		Weights:     o.weights,
		NewStore:    o.newStore,
		Preload:     o.preload,
		ReadRepair:  o.readRepair,
		Obs:         o.obs,
		Faults:      o.resolvedFaults(),
		Retry:       o.retry,
	})
}

// NewHACluster builds and starts a highly-available cluster of n
// processors: DA in normal mode, quorum-consensus failover when a member
// of F ∪ {p} crashes.
func NewHACluster(n int, opts ...ClusterOption) (*HACluster, error) {
	o := buildClusterOptions(opts)
	return ha.New(ha.Config{
		N:        n,
		T:        o.t,
		Initial:  o.resolvedInitial(),
		NewStore: o.newStore,
		Obs:      o.obs,
		Faults:   o.resolvedFaults(),
		Retry:    o.retry,
	})
}

// NewClusterFromConfig builds a cluster from a full ClusterConfig —
// the advanced fields (AdoptStores, FirstSeq) have no option form.
//
// Deprecated: use NewCluster with ClusterOptions.
func NewClusterFromConfig(cfg ClusterConfig) (*Cluster, error) { return sim.New(cfg) }

// NewQuorumClusterFromConfig builds a quorum cluster from a full
// QuorumConfig.
//
// Deprecated: use NewQuorumCluster with ClusterOptions.
func NewQuorumClusterFromConfig(cfg QuorumConfig) (*QuorumCluster, error) { return quorum.New(cfg) }

// NewHAClusterFromConfig builds a highly-available cluster from a full
// HAConfig.
//
// Deprecated: use NewHACluster with ClusterOptions.
func NewHAClusterFromConfig(cfg HAConfig) (*HACluster, error) { return ha.New(cfg) }
