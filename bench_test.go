// Benchmarks that regenerate every evaluated artifact of Huang & Wolfson
// (ICDE 1994). There is one benchmark per figure/claim (see DESIGN.md's
// per-experiment index); each reports the measured quantity of interest as
// a custom metric next to the usual ns/op, so `go test -bench=. -benchmem`
// doubles as the experiment run.
package objalloc_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"objalloc/internal/adaptive"
	"objalloc/internal/adversary"
	"objalloc/internal/baseline"
	"objalloc/internal/cache"
	"objalloc/internal/competitive"
	"objalloc/internal/cost"
	"objalloc/internal/dom"
	"objalloc/internal/feed"
	"objalloc/internal/ha"
	"objalloc/internal/hetero"
	"objalloc/internal/latency"
	"objalloc/internal/model"
	"objalloc/internal/opt"
	"objalloc/internal/server"
	"objalloc/internal/sim"
	"objalloc/internal/tracing"
	"objalloc/internal/workload"
)

func benchBattery() competitive.BatteryConfig {
	cfg := competitive.DefaultBattery()
	cfg.RandomSchedules, cfg.RandomLength, cfg.NemesisRounds = 2, 24, 30
	return cfg
}

// E1 / Figure 1: sweep the SC (cd, cc) plane and classify regions.
func BenchmarkFigure1(b *testing.B) {
	grid := []float64{0.25, 0.75, 1.25, 1.75}
	var agree, decided int
	for i := 0; i < b.N; i++ {
		points, err := competitive.Sweep(context.Background(), competitive.SweepSpec{
			CDs: grid, CCs: grid, Battery: benchBattery(),
		})
		if err != nil {
			b.Fatal(err)
		}
		agree, decided = 0, 0
		for _, p := range points {
			if p.Analytic == competitive.RegionSASuperior || p.Analytic == competitive.RegionDASuperior {
				decided++
				if p.Empirical == p.Analytic {
					agree++
				}
			}
		}
	}
	b.ReportMetric(float64(agree)/float64(decided), "agreement")
}

// E2 / Figure 2: the MC plane; DA must win every admissible point.
func BenchmarkFigure2(b *testing.B) {
	grid := []float64{0.25, 0.75, 1.25, 1.75}
	var daWins, admissible int
	for i := 0; i < b.N; i++ {
		points, err := competitive.Sweep(context.Background(), competitive.SweepSpec{
			CDs: grid, CCs: grid, Mobile: true, Battery: benchBattery(),
		})
		if err != nil {
			b.Fatal(err)
		}
		daWins, admissible = 0, 0
		for _, p := range points {
			if p.Analytic == competitive.RegionCannotBeTrue {
				continue
			}
			admissible++
			if p.Empirical == competitive.RegionDASuperior {
				daWins++
			}
		}
	}
	b.ReportMetric(float64(daWins)/float64(admissible), "DA-win-frac")
}

// benchWorst measures an algorithm's worst battery ratio at one cost point
// and reports measured ratio and bound.
func benchWorst(b *testing.B, m cost.Model, f dom.Factory, bound float64) {
	b.Helper()
	cfg := benchBattery()
	scheds := cfg.Build()
	var worst competitive.Worst
	var err error
	for i := 0; i < b.N; i++ {
		worst, err = competitive.WorstRatio(m, f, scheds, cfg.Initial(), cfg.T)
		if err != nil {
			b.Fatal(err)
		}
		if worst.Ratio > bound+1e-9 {
			b.Fatalf("bound violated: %.4f > %.4f", worst.Ratio, bound)
		}
	}
	b.ReportMetric(worst.Ratio, "worst-ratio")
	b.ReportMetric(bound, "paper-bound")
}

// E3 / Theorem 1: SA <= (1+cc+cd) x OPT in SC.
func BenchmarkTheorem1SA(b *testing.B) {
	m := cost.SC(0.3, 1.2)
	benchWorst(b, m, dom.StaticFactory, competitive.SABound(m))
}

// E5 / Theorem 2: DA <= (2+2cc) x OPT in SC.
func BenchmarkTheorem2DA(b *testing.B) {
	m := cost.SC(0.3, 0.8)
	benchWorst(b, m, dom.DynamicFactory, 2+2*m.CC)
}

// E6 / Theorem 3: DA <= (2+cc) x OPT when cd > 1.
func BenchmarkTheorem3DA(b *testing.B) {
	m := cost.SC(0.3, 1.5)
	benchWorst(b, m, dom.DynamicFactory, competitive.DABound(m))
}

// E9 / Theorem 4: DA <= (2+3cc/cd) x OPT in MC.
func BenchmarkTheorem4DAMobile(b *testing.B) {
	m := cost.MC(0.3, 1.0)
	benchWorst(b, m, dom.DynamicFactory, competitive.DABound(m))
}

// E4 / Proposition 1: the nemesis ratio converges to SA's bound.
func BenchmarkProposition1(b *testing.B) {
	m := cost.SC(0.4, 1.1)
	initial := model.NewSet(0, 1)
	sched := adversary.SAPunisher(5, 200)
	var meas competitive.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		meas, err = competitive.Ratio(m, dom.StaticFactory, sched, initial, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(meas.Ratio, "nemesis-ratio")
	b.ReportMetric(competitive.SABound(m), "tight-bound")
}

// E7 / Proposition 2: DA's nemesis ratio exceeds 1.5 at small costs.
func BenchmarkProposition2(b *testing.B) {
	m := cost.SC(0.01, 0.02)
	initial := model.NewSet(0, 1)
	sched, err := adversary.DAPunisher([]model.ProcessorID{2, 3, 4, 5}, 0, 60)
	if err != nil {
		b.Fatal(err)
	}
	var meas competitive.Measurement
	for i := 0; i < b.N; i++ {
		meas, err = competitive.Ratio(m, dom.DynamicFactory, sched, initial, 2)
		if err != nil {
			b.Fatal(err)
		}
		if meas.Ratio <= competitive.DALowerBound {
			b.Fatalf("nemesis ratio %.4f under 1.5", meas.Ratio)
		}
	}
	b.ReportMetric(meas.Ratio, "nemesis-ratio")
}

// E8 / Proposition 3: SA's MC ratio grows linearly with the run length.
func BenchmarkProposition3(b *testing.B) {
	m := cost.MC(0.3, 1.0)
	initial := model.NewSet(0, 1)
	var r64, r128 float64
	for i := 0; i < b.N; i++ {
		m64, err := competitive.Ratio(m, dom.StaticFactory, adversary.SAPunisher(5, 64), initial, 2)
		if err != nil {
			b.Fatal(err)
		}
		m128, err := competitive.Ratio(m, dom.StaticFactory, adversary.SAPunisher(5, 128), initial, 2)
		if err != nil {
			b.Fatal(err)
		}
		r64, r128 = m64.Ratio, m128.Ratio
	}
	b.ReportMetric(r128/r64, "growth-x2") // ~2.0: linear divergence
}

// E10: the §1.3 worked example.
func BenchmarkWorkedExample(b *testing.B) {
	m := cost.SC(0.25, 1.0)
	sched := model.MustParseSchedule("r1 r1 r2 w2 r2 r2 r2")
	initial := model.NewSet(1)
	var optCost float64
	var err error
	for i := 0; i < b.N; i++ {
		optCost, err = opt.SolveCost(m, sched, initial, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(optCost, "opt-cost")
}

// E11: worst-case ratios are (nearly) independent of t.
func BenchmarkTSensitivity(b *testing.B) {
	m := cost.SC(0.3, 1.2)
	var spread float64
	for i := 0; i < b.N; i++ {
		var lo, hi float64
		for _, tAvail := range []int{2, 3, 4} {
			cfg := benchBattery()
			cfg.T = tAvail
			cfg.N = tAvail + 3
			w, err := competitive.WorstRatio(m, dom.DynamicFactory, cfg.Build(), cfg.Initial(), tAvail)
			if err != nil {
				b.Fatal(err)
			}
			if lo == 0 || w.Ratio < lo {
				lo = w.Ratio
			}
			if w.Ratio > hi {
				hi = w.Ratio
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "ratio-spread")
}

// E12: average-case comparison on random workloads.
func BenchmarkAverageCase(b *testing.B) {
	m := cost.SC(0.2, 2.0) // deep in DA's region
	initial := model.NewSet(0, 1)
	rng := rand.New(rand.NewSource(123))
	var scheds []model.Schedule
	for i := 0; i < 10; i++ {
		scheds = append(scheds, workload.Uniform(rng, 5, 40, 0.15))
	}
	var saMean, daMean float64
	var err error
	for i := 0; i < b.N; i++ {
		saMean, err = competitive.MeanRatio(m, dom.StaticFactory, scheds, initial, 2)
		if err != nil {
			b.Fatal(err)
		}
		daMean, err = competitive.MeanRatio(m, dom.DynamicFactory, scheds, initial, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(saMean/daMean, "SA/DA-mean") // > 1: DA also wins on average
}

// E13: a full crash-failover-recover lifetime on the HA cluster.
func BenchmarkFailover(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	sched := workload.Uniform(rng, 6, 150, 0.3)
	for i := 0; i < b.N; i++ {
		h, err := ha.New(ha.Config{N: 6, T: 2, Initial: model.NewSet(0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		for j, q := range sched {
			switch j {
			case 50:
				if err := h.Crash(0); err != nil {
					b.Fatal(err)
				}
			case 100:
				if err := h.Restart(0); err != nil {
					b.Fatal(err)
				}
			}
			if h.Crashed().Contains(q.Processor) {
				continue
			}
			if q.IsRead() {
				_, err = h.Read(q.Processor)
			} else {
				_, err = h.Write(q.Processor, []byte("x"))
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		h.Close()
	}
}

// E14: convergent vs competitive on a regular pattern.
func BenchmarkConvergentVsCompetitive(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	sched, err := workload.Regular(rng, []workload.Phase{
		{Length: 400, ReadRate: map[model.ProcessorID]float64{4: 10, 5: 4}, WriteRate: map[model.ProcessorID]float64{0: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	m := cost.SC(0.2, 1.0)
	initial := model.NewSet(0, 1)
	var saCost, convCost float64
	for i := 0; i < b.N; i++ {
		for name, f := range map[string]dom.Factory{"sa": dom.StaticFactory, "conv": baseline.ConvergentFactory(32)} {
			las, err := dom.RunFactory(f, initial, 2, sched)
			if err != nil {
				b.Fatal(err)
			}
			c := cost.ScheduleCost(m, las, initial)
			if name == "sa" {
				saCost = c
			} else {
				convCost = c
			}
		}
	}
	b.ReportMetric(saCost/convCost, "SA/Conv-cost")
}

// E15: the executed protocol reproduces the analytic accounting exactly.
func BenchmarkSimulatorFidelity(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	sched := workload.Uniform(rng, 6, 100, 0.3)
	initial := model.NewSet(0, 1)
	las, err := dom.RunFactory(dom.DynamicFactory, initial, 2, sched)
	if err != nil {
		b.Fatal(err)
	}
	want, _ := cost.ScheduleCounts(las, initial)
	for i := 0; i < b.N; i++ {
		c, err := sim.New(sim.Config{N: 6, T: 2, Protocol: sim.DA, Initial: initial})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Run(sched); err != nil {
			b.Fatal(err)
		}
		if got := c.Counts(); got != want {
			b.Fatalf("executed %v != analytic %v", got, want)
		}
		c.Close()
	}
}

// ---- microbenchmarks of the moving parts ----

// The offline-optimum DP on a 200-request schedule over 10 processors.
func BenchmarkOptimalDP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sched := workload.Uniform(rng, 10, 200, 0.3)
	initial := model.NewSet(0, 1)
	m := cost.SC(0.3, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.SolveCost(m, sched, initial, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// One DA online step.
func BenchmarkDAStep(b *testing.B) {
	alg, err := dom.NewDynamic(model.NewSet(0, 1), 2)
	if err != nil {
		b.Fatal(err)
	}
	reqs := []model.Request{model.R(4), model.W(0), model.R(5), model.W(3)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Step(reqs[i%len(reqs)])
	}
}

// A write through the executed DA protocol (propagation + invalidation).
func BenchmarkClusterWrite(b *testing.B) {
	c, err := sim.New(sim.Config{N: 8, T: 2, Protocol: sim.DA, Initial: model.NewSet(0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := []byte("object-version-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(model.ProcessorID(i%8), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// E16: response time on a contended bus; reports the saturation gap.
func BenchmarkResponseTimeBusContention(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	sched := workload.Hotspot(rng, 6, 200, 0.08, model.NewSet(4, 5), 0.8)
	initial := model.NewSet(0, 1)
	profile := latency.Profile{ControlTime: 0.05, DataTime: 1, PropDelay: 0.05, DiskTime: 0.3, SharedBus: true}
	var saMean, daMean float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			f  dom.Factory
			to *float64
		}{{dom.StaticFactory, &saMean}, {dom.DynamicFactory, &daMean}} {
			las, err := dom.RunFactory(tc.f, initial, 2, sched)
			if err != nil {
				b.Fatal(err)
			}
			res, err := latency.Simulate(profile, las, initial, latency.UniformArrivals(len(las), 0.9))
			if err != nil {
				b.Fatal(err)
			}
			*tc.to = res.Summary.Mean
		}
	}
	b.ReportMetric(saMean/daMean, "SA/DA-resp")
}

// E17: DA's advantage under a clustered (WAN) topology.
func BenchmarkHeteroClustered(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	initial := model.NewSet(0, 1)
	sched := workload.Hotspot(rng, 6, 300, 0.1, model.NewSet(3, 4, 5), 0.9)
	m := hetero.Clustered(6, 3, 0.05, 0.25, 0.8, 4.0, 1)
	var ratio float64
	for i := 0; i < b.N; i++ {
		saCost, _, err := m.EvaluateFactory(dom.StaticFactory, initial, 2, sched)
		if err != nil {
			b.Fatal(err)
		}
		daCost, _, err := m.EvaluateFactory(dom.DynamicFactory, initial, 2, sched)
		if err != nil {
			b.Fatal(err)
		}
		ratio = saCost / daCost
	}
	b.ReportMetric(ratio, "SA/DA-cost")
}

// E18: beam-search offline approximation on a 30-processor instance.
func BenchmarkBeamSearchAtScale(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	sched := workload.Uniform(rng, 30, 300, 0.25)
	initial := model.NewSet(0, 1)
	m := cost.SC(0.3, 1.2)
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := opt.Beam(m, sched, initial, 2, 32)
		if err != nil {
			b.Fatal(err)
		}
		gap = res.Cost / opt.LowerBound(m, sched, 2)
	}
	b.ReportMetric(gap, "beam/LB")
}

// Ablation: the DA-k threshold family between DA (k=1) and SA-like
// behaviour (large k), on a read-heavy workload where eager replication
// wins.
func BenchmarkKThresholdAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	sched := workload.Hotspot(rng, 6, 300, 0.1, model.NewSet(4, 5), 0.8)
	initial := model.NewSet(0, 1)
	m := cost.SC(0.2, 1.5)
	var k1, k4 float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			k  int
			to *float64
		}{{1, &k1}, {4, &k4}} {
			las, err := dom.RunFactory(baseline.KThresholdFactory(tc.k), initial, 2, sched)
			if err != nil {
				b.Fatal(err)
			}
			*tc.to = cost.ScheduleCost(m, las, initial)
		}
	}
	b.ReportMetric(k4/k1, "k4/k1-cost")
}

// Ablation: reader-assignment policy — rotating the serving replica across
// Q spreads load but does not change the §3 cost (homogeneous prices).
func BenchmarkPickerAblation(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sched := workload.Uniform(rng, 6, 300, 0.2)
	initial := model.NewSet(0, 1, 2)
	m := cost.SC(0.3, 1.2)
	var minCost, rotCost float64
	for i := 0; i < b.N; i++ {
		algMin, err := dom.NewStatic(initial, 3)
		if err != nil {
			b.Fatal(err)
		}
		minCost = cost.ScheduleCost(m, dom.Run(algMin, sched), initial)
		algRot, err := dom.NewStatic(initial, 3)
		if err != nil {
			b.Fatal(err)
		}
		algRot.(*dom.Static).WithPicker(dom.RotatingPicker())
		rotCost = cost.ScheduleCost(m, dom.Run(algRot, sched), initial)
	}
	b.ReportMetric(rotCost/minCost, "rot/min-cost")
}

// E20: the cost of bounded storage relative to the paper's abundant-storage
// assumption.
func BenchmarkBoundedStorage(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	type op struct {
		obj   string
		p     model.ProcessorID
		write bool
	}
	var ops []op
	for i := 0; i < 2000; i++ {
		ops = append(ops, op{
			obj:   "o" + string(rune('a'+rng.Intn(16))),
			p:     model.ProcessorID(rng.Intn(6)),
			write: rng.Float64() < 0.1,
		})
	}
	run := func(capacity int) float64 {
		m, err := cache.New(cache.Config{N: 6, Capacity: capacity, Model: cost.SC(0.3, 1.2)})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range ops {
			if o.write {
				m.Write(o.obj, o.p)
			} else {
				m.Read(o.obj, o.p)
			}
		}
		return m.Cost()
	}
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = run(2)/run(0) - 1
	}
	b.ReportMetric(100*overhead, "overhead-%")
}

// §6.2: temporary vs permanent standing orders on the executed feed.
func BenchmarkFeedPolicies(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := cost.SC(0.3, 2.0)
	var perm, temp float64
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct {
			policy feed.Policy
			to     *float64
		}{{feed.PermanentOrders, &perm}, {feed.TemporaryOrders, &temp}} {
			f, err := feed.Open(feed.Config{Stations: 6, T: 2, Policy: tc.policy})
			if err != nil {
				b.Fatal(err)
			}
			for obj := 0; obj < 40; obj++ {
				if _, err := f.Publish(model.ProcessorID(rng.Intn(6)), []byte("img")); err != nil {
					b.Fatal(err)
				}
				reader := model.ProcessorID(rng.Intn(6))
				for r := 0; r < 3; r++ {
					if _, _, err := f.Latest(reader); err != nil {
						b.Fatal(err)
					}
				}
			}
			*tc.to = f.Cost(m)
			f.Close()
		}
	}
	b.ReportMetric(perm/temp, "perm/temp-cost")
}

// E21: empirical lower bound for DA inside the paper's open gap.
func BenchmarkGapProbe(b *testing.B) {
	m := cost.SC(0.1, 0.4)
	initial := model.NewSet(0, 1)
	var alpha float64
	for i := 0; i < b.N; i++ {
		fit, err := competitive.FitAsymptotic(context.Background(), competitive.FitSpec{
			Model: m, Factory: dom.DynamicFactory,
			Family: func(k int) model.Schedule {
				s, err := adversary.DAPunisher([]model.ProcessorID{2, 3, 4, 5}, 0, k)
				if err != nil {
					b.Fatal(err)
				}
				return s
			},
			Ks: []int{10, 20, 40}, Initial: initial, T: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		alpha = fit.Alpha
		if alpha <= competitive.DALowerBound {
			b.Fatalf("gap probe %.4f below the paper's 1.5", alpha)
		}
	}
	b.ReportMetric(alpha, "DA-lower-bound")
}

// E22: bisected SA/DA crossover on the cd axis at cc = 0.2.
func BenchmarkCrossover(b *testing.B) {
	cfg := benchBattery()
	var cd float64
	for i := 0; i < b.N; i++ {
		res, err := competitive.Crossover(context.Background(), competitive.CrossoverSpec{
			CC: 0.2, CDMax: 2.0, Iters: 8, Battery: cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		cd = res.CD
	}
	b.ReportMetric(cd, "crossover-cd")
}

// E25: the adaptive engine serving a mix-flip adversary end to end — the
// sharded server runs the per-object SA/DA controller against alternating
// read-heavy and write-heavy phases. Reports the adaptive total cost
// relative to the better of the two fixed protocols on the same stream
// (< 1 means the controller beats any fixed choice).
func BenchmarkAdaptiveServer(b *testing.B) {
	sched := adversary.MixFlip(5, 0, 40, 3)
	const objects = 32
	run := func(eng server.Engine, spec adaptive.Spec) float64 {
		s, err := server.New(server.Config{
			Shards: 4, Engine: eng, Adaptive: spec, N: 6, T: 3,
			Model: cost.SC(0.25, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		for o := 0; o < objects; o++ {
			name := fmt.Sprintf("obj-%d", o)
			for _, q := range sched {
				if _, err := s.Do(name, q); err != nil {
					b.Fatal(err)
				}
			}
		}
		s.Drain()
		return s.Stats().Cost
	}
	var adaptiveCost float64
	for i := 0; i < b.N; i++ {
		adaptiveCost = run(server.EngineAdaptive, adaptive.Spec{Window: 8, Hysteresis: 2})
	}
	b.StopTimer()
	best := math.Min(run(server.EngineSA, adaptive.Spec{}), run(server.EngineDA, adaptive.Spec{}))
	b.ReportMetric(adaptiveCost/best, "adaptive/best-fixed")
}

// sweepBenchSpec is the figure-1 grid at reduced resolution: enough cells
// (36) to keep the worker pool busy, small enough that serial runs finish
// in benchmark time.
func sweepBenchSpec(parallelism int) competitive.SweepSpec {
	grid := []float64{0.2, 0.5, 0.8, 1.1, 1.4, 1.7}
	return competitive.SweepSpec{
		CDs: grid, CCs: grid,
		Battery:     benchBattery(),
		Parallelism: parallelism,
	}
}

// BenchmarkSweepSerial pins the engine to one worker: the baseline the
// parallel run is compared against.
func BenchmarkSweepSerial(b *testing.B) {
	spec := sweepBenchSpec(1)
	for i := 0; i < b.N; i++ {
		if _, err := competitive.Sweep(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the same grid with the default worker count
// (GOMAXPROCS). On a single-core machine the two benchmarks coincide; on
// >= 4 cores the grid cells are independent, so this one is expected to
// finish in a fraction of the serial time.
func BenchmarkSweepParallel(b *testing.B) {
	spec := sweepBenchSpec(0)
	for i := 0; i < b.N; i++ {
		if _, err := competitive.Sweep(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerTraced quantifies the request-tracing overhead on the
// sharded server's hot path. "off" is the PR's acceptance baseline (a nil
// tracer must cost only nil checks — within 2% of the untraced server),
// "deterministic" adds span construction with zeroed clocks, "wallclock"
// adds monotonic timestamps per stage, and "sampled1pct" shows tail
// sampling discarding the span cost for unflagged requests.
func BenchmarkServerTraced(b *testing.B) {
	run := func(b *testing.B, tr *tracing.Tracer, wantSpans bool) {
		s, err := server.New(server.Config{
			Shards: 4, Queue: 1024, N: 8, T: 3, Trace: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		var names [64]string
		for i := range names {
			names[i] = fmt.Sprintf("obj-%d", i)
		}
		q := model.R(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Do(names[i&63], q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		s.Drain()
		if wantSpans && tr.Len() == 0 {
			b.Fatal("tracer recorded no spans")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, false) })
	b.Run("deterministic", func(b *testing.B) {
		run(b, tracing.New(tracing.Config{Deterministic: true, MaxSpans: 1 << 24}), true)
	})
	b.Run("wallclock", func(b *testing.B) {
		run(b, tracing.New(tracing.Config{MaxSpans: 1 << 24}), true)
	})
	b.Run("sampled1pct", func(b *testing.B) {
		run(b, tracing.New(tracing.Config{SampleRate: 0.01, MaxSpans: 1 << 24}), false)
	})
}
