#!/bin/sh
# trace_smoke.sh — the request-tracing gate. Two halves:
#
#  1. HTTP path: boot objallocd with tracing on, drive it with loadgen
#     (which stamps deterministic traceparent headers on every batch),
#     SIGTERM, and check the daemon wrote a non-empty trace whose every
#     line passes schema validation and whose spans reconcile exactly
#     against the engine's summary (traceview -check).
#  2. Determinism: two in-process loadgen runs with the same seed and
#     workload but different shard counts, both under
#     -trace-deterministic, must produce byte-identical trace files.
#     (Worker-count invariance is asserted by the package test
#     TestTraceDeterminismAcrossShardsAndWorkers, where per-object
#     request order is held fixed by construction; loadgen's workload
#     partitioning changes per-object streams with -workers.)
#
# Run from the repo root, normally via `make trace-smoke`.
set -eu

dir="$(mktemp -d)"
daemon_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/objallocd" ./cmd/objallocd
go build -o "$dir/loadgen" ./cmd/loadgen
go build -o "$dir/traceview" ./cmd/traceview

"$dir/objallocd" -shards 4 -queue 256 -seed 7 -addr 127.0.0.1:0 \
    -addrfile "$dir/addr" -trace "$dir/http-trace.jsonl" \
    >"$dir/daemon.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "trace-smoke: daemon never bound an address" >&2
        cat "$dir/daemon.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$dir/addr")"
echo "trace-smoke: objallocd on $addr, tracing to http-trace.jsonl"

"$dir/loadgen" -addr "$addr" -workers 4 -requests 2000 -batch 32 \
    -objects 32 -workload uniform:n=8,pwrite=0.3 -seed 7

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "trace-smoke: daemon exited nonzero" >&2
    cat "$dir/daemon.log" >&2 || true
    exit 1
fi
daemon_pid=

[ -s "$dir/http-trace.jsonl" ] || {
    echo "trace-smoke: HTTP trace file is empty" >&2
    exit 1
}
# traceview -check fails on any malformed line (schema) and on any
# cost/count mismatch between the spans and the engine summary.
"$dir/traceview" -check -top 3 "$dir/http-trace.jsonl" >"$dir/traceview.out" || {
    echo "trace-smoke: traceview rejected the HTTP trace" >&2
    cat "$dir/traceview.out" >&2 || true
    exit 1
}
grep -q 'reconciliation: OK' "$dir/traceview.out" || {
    echo "trace-smoke: HTTP trace did not reconcile" >&2
    cat "$dir/traceview.out" >&2
    exit 1
}
echo "trace-smoke: HTTP trace valid, $(wc -l <"$dir/http-trace.jsonl") lines, cost reconciles"

# Determinism: same seed and workload at different shard counts must
# produce byte-identical deterministic traces.
"$dir/loadgen" -inproc -shards 1 -workers 4 -requests 1500 -objects 24 \
    -workload uniform:n=8,pwrite=0.3 -seed 42 \
    -trace "$dir/det-a.jsonl" -trace-deterministic >/dev/null 2>&1
"$dir/loadgen" -inproc -shards 8 -workers 4 -requests 1500 -objects 24 \
    -workload uniform:n=8,pwrite=0.3 -seed 42 \
    -trace "$dir/det-b.jsonl" -trace-deterministic >/dev/null 2>&1

cmp "$dir/det-a.jsonl" "$dir/det-b.jsonl" || {
    echo "trace-smoke: deterministic traces differ across shard/worker counts" >&2
    exit 1
}
[ -s "$dir/det-a.jsonl" ] || {
    echo "trace-smoke: deterministic trace is empty" >&2
    exit 1
}
"$dir/traceview" -check "$dir/det-a.jsonl" >/dev/null || {
    echo "trace-smoke: deterministic trace failed validation" >&2
    exit 1
}

echo "trace-smoke: OK — deterministic traces byte-identical ($(wc -l <"$dir/det-a.jsonl") lines)"
