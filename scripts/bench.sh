#!/bin/sh
# bench.sh — the repo's perf trajectory: run every root benchmark (one
# per evaluated figure/claim, plus the microbenchmarks and the adaptive
# server) with fixed -benchtime/-count and write the results as
# BENCH_objalloc.json at the repo root, so successive PRs can diff both
# the timings and the reported experiment metrics. Run from the repo
# root, normally via `make bench`. Override with BENCHTIME=... COUNT=...
# OUT=... for ad-hoc runs.
set -eu

benchtime="${BENCHTIME:-100ms}"
count="${COUNT:-1}"
out="${OUT:-BENCH_objalloc.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem -benchtime "$benchtime" -count "$count" . | tee "$raw"

# Each benchmark line is "BenchmarkName  iters  value unit  value unit ...";
# fold the value/unit pairs into a metrics object per benchmark.
awk -v benchtime="$benchtime" -v count="$count" -v goversion="$(go env GOVERSION)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
    metrics = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        if (metrics != "") metrics = metrics ", "
        metrics = metrics "\"" $(i+1) "\": " $i
    }
    entries[n++] = "    {\"name\": \"" name "\", \"iterations\": " $2 ", \"metrics\": {" metrics "}}"
}
END {
    print "{"
    print "  \"go\": \"" goversion "\","
    print "  \"cpu\": \"" cpu "\","
    print "  \"benchtime\": \"" benchtime "\","
    print "  \"count\": " count ","
    print "  \"benchmarks\": ["
    for (i = 0; i < n; i++) print entries[i] (i < n - 1 ? "," : "")
    print "  ]"
    print "}"
}' "$raw" >"$out"

echo "bench: wrote $out ($(grep -c '"name"' "$out") benchmark runs)"
