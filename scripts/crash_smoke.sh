#!/bin/sh
# crash_smoke.sh — the kill-restart harness for the crash-recovery
# layer. Three runs against the same seeded workload:
#
#   1. Baseline: an uninterrupted journaling run, drained cleanly.
#   2. Crash: the daemon is SIGKILLed mid-load and restarted on the same
#      address with -recover; loadgen rides out the restart window with
#      -retrywindow (per-object sequence numbers make the resent batches
#      idempotent). The recovered run's deterministic accounting —
#      completed, reads/writes, coalesced, retransmissions, unreachable,
#      duplicates, objects, message counts, billed cost — must be
#      byte-identical to the baseline's.
#   3. Panic: -chaos-panic fires inside every shard loop; the supervisor
#      must recover each shard back to healthy and the drain must still
#      lose nothing.
#
# journalcheck then replays each run's journal directory offline and
# reconciles it against the opposite run's stats snapshot. Run from the
# repo root, normally via `make crash-smoke`.
set -eu

dir="$(mktemp -d)"
daemon_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/objallocd" ./cmd/objallocd
go build -o "$dir/loadgen" ./cmd/loadgen
go build -o "$dir/journalcheck" ./cmd/journalcheck

# One fixed workload, identical across runs: the determinism contract
# says accounting depends only on the seed and per-object order.
SHARDS=4
SEED=7
FAULTS="loss=0.05,delay=0.1"
ENGINE=adaptive
ASPEC="window=8,hysteresis=2"
LOAD="-workers 4 -requests 60000 -batch 16 -objects 64 -seed 3 -workload uniform:n=8,pwrite=0.3"

daemon_flags() {
    # $1 journal dir, $2 stats file; remaining args appended.
    j="$1"; s="$2"; shift 2
    echo "-shards $SHARDS -queue 256 -engine $ENGINE -adaptive $ASPEC \
        -seed $SEED -faults $FAULTS -checkpoint 512 \
        -journal $j -statsfile $s $*"
}

wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "crash-smoke: daemon never bound an address" >&2
            cat "$2" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

# The deterministic top-level stats subset: everything derivable from
# the seed and the per-object request order. rejected / deduped / the
# per-shard queue and restart figures are scheduling-dependent and
# excluded.
subset() {
    sed -n -e 's/^  "\(completed\|reads\|writes\|coalesced\|retransmissions\|unreachable\|duplicates\|objects\|cost\)":.*/&/p' \
        -e '/^  "counts": {/,/^  }/p' "$1"
}

# --- Run 1: uninterrupted baseline -----------------------------------
# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j1" "$dir/stats1.json") \
    -addr 127.0.0.1:0 -addrfile "$dir/addr" \
    >"$dir/daemon1.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr" "$dir/daemon1.log"
addr="$(cat "$dir/addr")"
echo "crash-smoke: baseline on $addr"

# shellcheck disable=SC2086
"$dir/loadgen" -addr "$addr" $LOAD >"$dir/loadgen1.log" 2>&1

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: baseline daemon exited nonzero" >&2
    cat "$dir/daemon1.log" >&2 || true
    exit 1
fi
daemon_pid=

# --- Run 2: SIGKILL mid-load, restart with -recover ------------------
# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j2" "$dir/stats2a.json") \
    -addr "$addr" -addrfile "$dir/addr2" \
    >"$dir/daemon2a.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr2" "$dir/daemon2a.log"
echo "crash-smoke: crash run on $addr, SIGKILL incoming"

# shellcheck disable=SC2086
"$dir/loadgen" -addr "$addr" $LOAD -retrywindow 60s \
    >"$dir/loadgen2.log" 2>&1 &
lg_pid=$!

sleep 0.4
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=
echo "crash-smoke: daemon killed, restarting with -recover"

# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j2" "$dir/stats2.json") \
    -addr "$addr" -addrfile "$dir/addr2b" -recover \
    >"$dir/daemon2b.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr2b" "$dir/daemon2b.log"

if ! wait "$lg_pid"; then
    echo "crash-smoke: loadgen did not survive the restart window" >&2
    cat "$dir/loadgen2.log" >&2 || true
    exit 1
fi

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: recovered daemon exited nonzero — recovery lost requests" >&2
    cat "$dir/daemon2b.log" >&2 || true
    exit 1
fi
daemon_pid=

subset "$dir/stats1.json" >"$dir/subset1"
subset "$dir/stats2.json" >"$dir/subset2"
if ! cmp -s "$dir/subset1" "$dir/subset2"; then
    echo "crash-smoke: recovered accounting diverges from the baseline" >&2
    diff "$dir/subset1" "$dir/subset2" >&2 || true
    exit 1
fi
echo "crash-smoke: recovered accounting is byte-identical to the baseline"

# Cross-reconcile the journals offline: each run's journal must replay
# to the *other* run's stats snapshot.
# shellcheck disable=SC2086
"$dir/journalcheck" -journal "$dir/j2" -shards $SHARDS -engine $ENGINE \
    -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
    -statsfile "$dir/stats1.json"
# shellcheck disable=SC2086
"$dir/journalcheck" -journal "$dir/j1" -shards $SHARDS -engine $ENGINE \
    -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
    -statsfile "$dir/stats2.json"

# --- Run 3: injected shard panics, supervisor recovery ---------------
# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j3" "$dir/stats3.json") \
    -addr 127.0.0.1:0 -addrfile "$dir/addr3" -chaos-panic 500 \
    >"$dir/daemon3.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr3" "$dir/daemon3.log"
addr3="$(cat "$dir/addr3")"
echo "crash-smoke: panic run on $addr3"

# shellcheck disable=SC2086
"$dir/loadgen" -addr "$addr3" $LOAD -retrywindow 60s >"$dir/loadgen3.log" 2>&1

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: panic-run daemon exited nonzero — the supervisor lost requests" >&2
    cat "$dir/daemon3.log" >&2 || true
    exit 1
fi
daemon_pid=

grep -q '"restarts"' "$dir/stats3.json" || {
    echo "crash-smoke: no shard restarts recorded — the injected panic never fired" >&2
    cat "$dir/stats3.json" >&2 || true
    exit 1
}
if grep -q '"state"' "$dir/stats3.json"; then
    echo "crash-smoke: a shard did not recover to healthy" >&2
    cat "$dir/stats3.json" >&2 || true
    exit 1
fi
subset "$dir/stats3.json" >"$dir/subset3"
if ! cmp -s "$dir/subset1" "$dir/subset3"; then
    echo "crash-smoke: post-panic accounting diverges from the baseline" >&2
    diff "$dir/subset1" "$dir/subset3" >&2 || true
    exit 1
fi
# shellcheck disable=SC2086
"$dir/journalcheck" -journal "$dir/j3" -shards $SHARDS -engine $ENGINE \
    -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
    -statsfile "$dir/stats3.json"

restarts=$(sed -n 's/.*"restarts": \([0-9]*\).*/\1/p' "$dir/stats3.json" | awk '{s+=$1} END {print s}')
echo "crash-smoke: OK — kill-restart recovered, $restarts supervised shard restarts, journals reconcile"
