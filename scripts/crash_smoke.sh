#!/bin/sh
# crash_smoke.sh — the kill-restart harness for the crash-recovery
# layer. Three runs against the same seeded workload:
#
#   1. Baseline: an uninterrupted journaling run, drained cleanly.
#   2. Crash: the daemon is SIGKILLed mid-load and restarted on the same
#      address with -recover; loadgen rides out the restart window with
#      -retrywindow (per-object sequence numbers make the resent batches
#      idempotent). The recovered run's deterministic accounting —
#      completed, reads/writes, coalesced, retransmissions, unreachable,
#      duplicates, objects, message counts, billed cost — must be
#      byte-identical to the baseline's.
#   3. Panic: -chaos-panic fires inside every shard loop; the supervisor
#      must recover each shard back to healthy and the drain must still
#      lose nothing.
#
# journalcheck then replays each run's journal directory offline and
# reconciles it against the opposite run's stats snapshot.
#
# Then the disk-fault scenarios (-disk-faults, internal/diskfault):
#
#   4. Transient disk faults at 1 and 8 shards: a torn record write, an
#      ENOSPC streak mid-commit and an injected fsync failure all hit
#      the journal mid-run; each fault panics the shard, the supervisor
#      rebuilds it from the durable prefix, and the drained accounting
#      must be byte-identical to a fault-free same-seed run at the same
#      shard count. journalcheck (with the parity -disk-faults flag)
#      reconciles the surviving journal against the fault-free stats.
#   5. Persistent disk failure: persistafter=1 is a dead disk; the
#      supervisor's rebuilds cannot make progress, so the shard must
#      fail-stop — batches get 503 + Retry-After + "unavailable",
#      /v1/healthz reports "failed" — and the daemon must exit nonzero
#      on drain, reporting the durability loss.
#
# Run from the repo root, normally via `make crash-smoke`.
set -eu

dir="$(mktemp -d)"
daemon_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill -KILL "$daemon_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/objallocd" ./cmd/objallocd
go build -o "$dir/loadgen" ./cmd/loadgen
go build -o "$dir/journalcheck" ./cmd/journalcheck

# One fixed workload, identical across runs: the determinism contract
# says accounting depends only on the seed and per-object order.
SHARDS=4
SEED=7
FAULTS="loss=0.05,delay=0.1"
ENGINE=adaptive
ASPEC="window=8,hysteresis=2"
LOAD="-workers 4 -requests 60000 -batch 16 -objects 64 -seed 3 -workload uniform:n=8,pwrite=0.3"

daemon_flags() {
    # $1 journal dir, $2 stats file; remaining args appended.
    j="$1"; s="$2"; shift 2
    echo "-shards $SHARDS -queue 256 -engine $ENGINE -adaptive $ASPEC \
        -seed $SEED -faults $FAULTS -checkpoint 512 \
        -journal $j -statsfile $s $*"
}

wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "crash-smoke: daemon never bound an address" >&2
            cat "$2" >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}

# The deterministic top-level stats subset: everything derivable from
# the seed and the per-object request order. rejected / deduped / the
# per-shard queue and restart figures are scheduling-dependent and
# excluded.
subset() {
    sed -n -e 's/^  "\(completed\|reads\|writes\|coalesced\|retransmissions\|unreachable\|duplicates\|objects\|cost\)":.*/&/p' \
        -e '/^  "counts": {/,/^  }/p' "$1"
}

# --- Run 1: uninterrupted baseline -----------------------------------
# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j1" "$dir/stats1.json") \
    -addr 127.0.0.1:0 -addrfile "$dir/addr" \
    >"$dir/daemon1.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr" "$dir/daemon1.log"
addr="$(cat "$dir/addr")"
echo "crash-smoke: baseline on $addr"

# shellcheck disable=SC2086
"$dir/loadgen" -addr "$addr" $LOAD >"$dir/loadgen1.log" 2>&1

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: baseline daemon exited nonzero" >&2
    cat "$dir/daemon1.log" >&2 || true
    exit 1
fi
daemon_pid=

# --- Run 2: SIGKILL mid-load, restart with -recover ------------------
# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j2" "$dir/stats2a.json") \
    -addr "$addr" -addrfile "$dir/addr2" \
    >"$dir/daemon2a.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr2" "$dir/daemon2a.log"
echo "crash-smoke: crash run on $addr, SIGKILL incoming"

# shellcheck disable=SC2086
"$dir/loadgen" -addr "$addr" $LOAD -retrywindow 60s \
    >"$dir/loadgen2.log" 2>&1 &
lg_pid=$!

sleep 0.4
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=
echo "crash-smoke: daemon killed, restarting with -recover"

# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j2" "$dir/stats2.json") \
    -addr "$addr" -addrfile "$dir/addr2b" -recover \
    >"$dir/daemon2b.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr2b" "$dir/daemon2b.log"

if ! wait "$lg_pid"; then
    echo "crash-smoke: loadgen did not survive the restart window" >&2
    cat "$dir/loadgen2.log" >&2 || true
    exit 1
fi

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: recovered daemon exited nonzero — recovery lost requests" >&2
    cat "$dir/daemon2b.log" >&2 || true
    exit 1
fi
daemon_pid=

subset "$dir/stats1.json" >"$dir/subset1"
subset "$dir/stats2.json" >"$dir/subset2"
if ! cmp -s "$dir/subset1" "$dir/subset2"; then
    echo "crash-smoke: recovered accounting diverges from the baseline" >&2
    diff "$dir/subset1" "$dir/subset2" >&2 || true
    exit 1
fi
echo "crash-smoke: recovered accounting is byte-identical to the baseline"

# Cross-reconcile the journals offline: each run's journal must replay
# to the *other* run's stats snapshot.
# shellcheck disable=SC2086
"$dir/journalcheck" -journal "$dir/j2" -shards $SHARDS -engine $ENGINE \
    -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
    -statsfile "$dir/stats1.json"
# shellcheck disable=SC2086
"$dir/journalcheck" -journal "$dir/j1" -shards $SHARDS -engine $ENGINE \
    -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
    -statsfile "$dir/stats2.json"

# --- Run 3: injected shard panics, supervisor recovery ---------------
# shellcheck disable=SC2046
"$dir/objallocd" $(daemon_flags "$dir/j3" "$dir/stats3.json") \
    -addr 127.0.0.1:0 -addrfile "$dir/addr3" -chaos-panic 500 \
    >"$dir/daemon3.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr3" "$dir/daemon3.log"
addr3="$(cat "$dir/addr3")"
echo "crash-smoke: panic run on $addr3"

# shellcheck disable=SC2086
"$dir/loadgen" -addr "$addr3" $LOAD -retrywindow 60s >"$dir/loadgen3.log" 2>&1

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: panic-run daemon exited nonzero — the supervisor lost requests" >&2
    cat "$dir/daemon3.log" >&2 || true
    exit 1
fi
daemon_pid=

grep -q '"restarts"' "$dir/stats3.json" || {
    echo "crash-smoke: no shard restarts recorded — the injected panic never fired" >&2
    cat "$dir/stats3.json" >&2 || true
    exit 1
}
if grep -q '"state"' "$dir/stats3.json"; then
    echo "crash-smoke: a shard did not recover to healthy" >&2
    cat "$dir/stats3.json" >&2 || true
    exit 1
fi
subset "$dir/stats3.json" >"$dir/subset3"
if ! cmp -s "$dir/subset1" "$dir/subset3"; then
    echo "crash-smoke: post-panic accounting diverges from the baseline" >&2
    diff "$dir/subset1" "$dir/subset3" >&2 || true
    exit 1
fi
# shellcheck disable=SC2086
"$dir/journalcheck" -journal "$dir/j3" -shards $SHARDS -engine $ENGINE \
    -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
    -statsfile "$dir/stats3.json"

restarts=$(sed -n 's/.*"restarts": \([0-9]*\).*/\1/p' "$dir/stats3.json" | awk '{s+=$1} END {print s}')
echo "crash-smoke: kill-restart recovered, $restarts supervised shard restarts, journals reconcile"

# --- Run 4: transient disk faults at 1 and 8 shards ------------------
# Deterministic per-shard failpoints: a torn write at op 40, an ENOSPC
# streak at ops 90-91, an fsync failure at op 150, plus a whiff of
# probabilistic write errors. Every shard passes those op indexes, so
# the faults are guaranteed to fire; all are transient, so the drain
# must lose nothing and accounting must match a fault-free run.
DFPLAN="shortat=40,enospcat=90,enospclen=2,syncerrat=150,writeerr=0.0005,seed=11"
DFLOAD="-workers 4 -requests 12000 -batch 16 -objects 64 -seed 3 -workload uniform:n=8,pwrite=0.3"

for sc in 1 8; do
    for variant in clean faulty; do
        jd="$dir/j_df_${variant}_$sc"
        stats="$dir/stats_df_${variant}_$sc.json"
        extra=""
        if [ "$variant" = faulty ]; then
            extra="-disk-faults $DFPLAN"
        fi
        # shellcheck disable=SC2086
        "$dir/objallocd" -shards "$sc" -queue 256 -engine $ENGINE \
            -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" -checkpoint 512 \
            -journal "$jd" -statsfile "$stats" $extra \
            -addr 127.0.0.1:0 -addrfile "$dir/addr_df_${variant}_$sc" \
            >"$dir/daemon_df_${variant}_$sc.log" 2>&1 &
        daemon_pid=$!
        wait_addr "$dir/addr_df_${variant}_$sc" "$dir/daemon_df_${variant}_$sc.log"
        dfaddr="$(cat "$dir/addr_df_${variant}_$sc")"
        echo "crash-smoke: disk-fault $variant run ($sc shards) on $dfaddr"

        # shellcheck disable=SC2086
        "$dir/loadgen" -addr "$dfaddr" $DFLOAD -retrywindow 60s \
            >"$dir/loadgen_df_${variant}_$sc.log" 2>&1

        if [ "$variant" = faulty ]; then
            # The ops registry (journal fault count) lives behind
            # /v1/metrics; scrape it before the drain tears it down.
            curl -s --max-time 10 "http://$dfaddr/v1/metrics" \
                >"$dir/dfmetrics_$sc" || true
        fi

        kill -TERM "$daemon_pid"
        if ! wait "$daemon_pid"; then
            echo "crash-smoke: disk-fault $variant run ($sc shards) exited nonzero — transient faults must not lose durability" >&2
            cat "$dir/daemon_df_${variant}_$sc.log" >&2 || true
            exit 1
        fi
        daemon_pid=
    done

    grep -E -q '^objalloc_server_journal_faults [1-9]' "$dir/dfmetrics_$sc" || {
        echo "crash-smoke: no journal faults recorded at $sc shards — the failpoints never fired" >&2
        cat "$dir/dfmetrics_$sc" >&2 || true
        exit 1
    }
    subset "$dir/stats_df_clean_$sc.json" >"$dir/subset_df_clean_$sc"
    subset "$dir/stats_df_faulty_$sc.json" >"$dir/subset_df_faulty_$sc"
    if ! cmp -s "$dir/subset_df_clean_$sc" "$dir/subset_df_faulty_$sc"; then
        echo "crash-smoke: disk-fault accounting diverges from the fault-free run at $sc shards" >&2
        diff "$dir/subset_df_clean_$sc" "$dir/subset_df_faulty_$sc" >&2 || true
        exit 1
    fi
    # The surviving journal must replay to the fault-free run's stats;
    # -disk-faults exercises journalcheck's parity flag.
    "$dir/journalcheck" -journal "$dir/j_df_faulty_$sc" -shards "$sc" \
        -engine $ENGINE -adaptive "$ASPEC" -seed $SEED -faults "$FAULTS" \
        -disk-faults "$DFPLAN" -statsfile "$dir/stats_df_clean_$sc.json"
    echo "crash-smoke: disk-fault accounting is byte-identical to the fault-free run at $sc shards"
done

# --- Run 5: persistent disk failure, shard fail-stop -----------------
"$dir/objallocd" -shards 1 -queue 256 -engine $ENGINE -adaptive "$ASPEC" \
    -seed $SEED -faults "$FAULTS" -checkpoint 512 \
    -journal "$dir/j_dead" -disk-faults "persistafter=1,seed=11" \
    -addr 127.0.0.1:0 -addrfile "$dir/addr_dead" \
    >"$dir/daemon_dead.log" 2>&1 &
daemon_pid=$!
wait_addr "$dir/addr_dead" "$dir/daemon_dead.log"
dead_addr="$(cat "$dir/addr_dead")"
echo "crash-smoke: dead-disk run on $dead_addr"

# One request is enough: the carried task is retried through the
# supervisor's rebuild cycles until the no-progress threshold fail-stops
# the shard, which then refuses it with 503 + Retry-After.
code=$(curl -s -o "$dir/dead_body" -D "$dir/dead_headers" -w '%{http_code}' \
    --max-time 60 -X POST -H 'Content-Type: application/json' \
    -d '{"requests":[{"object":"a","op":"r","processor":0}]}' \
    "http://$dead_addr/v1/batch")
[ "$code" = 503 ] || {
    echo "crash-smoke: dead-disk batch got HTTP $code, want 503" >&2
    cat "$dir/dead_body" >&2 || true
    exit 1
}
grep -q '"unavailable":true' "$dir/dead_body" || {
    echo "crash-smoke: dead-disk batch response not marked unavailable" >&2
    cat "$dir/dead_body" >&2 || true
    exit 1
}
grep -qi '^retry-after:' "$dir/dead_headers" || {
    echo "crash-smoke: dead-disk 503 carries no Retry-After header" >&2
    cat "$dir/dead_headers" >&2 || true
    exit 1
}
hcode=$(curl -s -o "$dir/dead_health" -w '%{http_code}' --max-time 10 \
    "http://$dead_addr/v1/healthz")
[ "$hcode" = 503 ] || {
    echo "crash-smoke: dead-disk healthz got HTTP $hcode, want 503" >&2
    exit 1
}
grep -q '"state":"failed"' "$dir/dead_health" || {
    echo "crash-smoke: dead-disk healthz does not report the failed shard" >&2
    cat "$dir/dead_health" >&2 || true
    exit 1
}

kill -TERM "$daemon_pid"
if wait "$daemon_pid"; then
    echo "crash-smoke: dead-disk daemon exited zero — durability loss went unreported" >&2
    cat "$dir/daemon_dead.log" >&2 || true
    exit 1
fi
daemon_pid=
grep -q 'durability loss' "$dir/daemon_dead.log" || {
    echo "crash-smoke: dead-disk daemon did not report the durability loss" >&2
    cat "$dir/daemon_dead.log" >&2 || true
    exit 1
}
echo "crash-smoke: dead disk fail-stopped the shard, refused with 503 + Retry-After, drain reported the loss"

echo "crash-smoke: OK — kill-restart, shard panics, transient disk faults and a dead disk all recovered or failed safe"
