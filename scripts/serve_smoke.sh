#!/bin/sh
# serve_smoke.sh — boot objallocd, drive it with loadgen for a few
# seconds, deliver SIGTERM, and assert the graceful drain: the daemon
# must exit zero (it exits nonzero itself if any accepted request was
# lost), the final stats must be marked final, and the metrics stream
# must contain per-object accounting. Run from the repo root, normally
# via `make serve-smoke`.
set -eu

dir="$(mktemp -d)"
daemon_pid=
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/objallocd" ./cmd/objallocd
go build -o "$dir/loadgen" ./cmd/loadgen

"$dir/objallocd" -shards 4 -queue 128 -addr 127.0.0.1:0 \
    -addrfile "$dir/addr" -statsfile "$dir/stats.json" \
    -metrics "$dir/metrics.jsonl" -journal "$dir/journal" \
    >"$dir/daemon.log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -s "$dir/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never bound an address" >&2
        cat "$dir/daemon.log" >&2 || true
        exit 1
    fi
    sleep 0.1
done
addr="$(cat "$dir/addr")"
echo "serve-smoke: objallocd on $addr, driving load for 5s"

"$dir/loadgen" -addr "$addr" -workers 4 -duration 5s -batch 32 \
    -objects 64 -workload uniform:n=8,pwrite=0.3

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "serve-smoke: daemon exited nonzero — drain lost requests or failed" >&2
    cat "$dir/daemon.log" >&2 || true
    exit 1
fi
daemon_pid=

grep -q '"final": true' "$dir/stats.json" || {
    echo "serve-smoke: stats file not marked final" >&2
    cat "$dir/stats.json" >&2 || true
    exit 1
}
[ -s "$dir/metrics.jsonl" ] || {
    echo "serve-smoke: metrics stream is empty" >&2
    exit 1
}
grep -q '"event":"object"' "$dir/metrics.jsonl" || {
    echo "serve-smoke: no per-object events in the metrics stream" >&2
    exit 1
}

echo "serve-smoke: OK — clean drain, $(wc -l <"$dir/metrics.jsonl") metrics lines"
