module objalloc

go 1.22
