package objalloc

import (
	"io"
	"net/http"

	"objalloc/internal/server"
	"objalloc/internal/tracing"
)

// ---- Sharded allocation service ----
//
// The server package turns the multi-object directory into a
// long-running service: objects are hashed to independent shards, each
// shard runs its own allocation engine (SA, DA, executed HA clusters,
// or the online adaptive SA/DA controller — ServerEngineAdaptive,
// configured via ServerConfig.Adaptive)
// behind a batched mailbox with admission control, and a graceful drain
// completes every accepted request before shutdown. The objallocd daemon
// (cmd/objallocd) serves this over HTTP; loadgen (cmd/loadgen) replays
// workload streams against it.

// ServerConfig describes the sharded allocation service.
type ServerConfig = server.Config

// Server is the running service.
type Server = server.Server

// ServerResult is one serviced request's outcome.
type ServerResult = server.Result

// ServerStats is the service's operational snapshot.
type ServerStats = server.Stats

// ServerShardStats is one shard's operational snapshot.
type ServerShardStats = server.ShardStats

// ServerEngine selects the per-shard engine.
type ServerEngine = server.Engine

// Server engines.
const (
	ServerEngineDA       = server.EngineDA
	ServerEngineSA       = server.EngineSA
	ServerEngineHA       = server.EngineHA
	ServerEngineAdaptive = server.EngineAdaptive
)

// CoalesceMode controls the service's read coalescing.
type CoalesceMode = server.CoalesceMode

// Coalesce modes.
const (
	CoalesceAuto = server.CoalesceAuto
	CoalesceOn   = server.CoalesceOn
	CoalesceOff  = server.CoalesceOff
)

// Overloaded is the admission-control rejection: the target shard's
// mailbox is full; retry after its RetryAfter hint.
type Overloaded = server.Overloaded

// ErrServerDraining is returned by Server.Do once the graceful drain has
// begun.
var ErrServerDraining = server.ErrDraining

// NewServer starts the sharded allocation service. With
// ServerConfig.Journal set, each shard group-commits a request journal
// (fsynced once per service round, checkpointed every CheckpointEvery
// records); ServerConfig.Recover replays those journals on startup, so
// a crashed server restarted over the same directory continues with the
// exact state and accounting the last committed round left. Shard loops
// run under a supervisor that recovers panics by rebuilding from the
// journal (state surfaced per shard via /v1/healthz and Stats).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ServerReplayDir reconstructs a drained or crashed run's deterministic
// stats offline by replaying its journal directory under the same
// config — the reconciliation behind cmd/journalcheck.
func ServerReplayDir(cfg ServerConfig) (ServerStats, error) { return server.ReplayDir(cfg) }

// ParseServerEngine parses an engine name: "da", "sa", "ha" or
// "adaptive".
func ParseServerEngine(s string) (ServerEngine, error) { return server.ParseEngine(s) }

// ServerHandler returns the service's HTTP API (POST /v1/batch,
// GET /v1/stats, GET /v1/metrics, GET /v1/healthz).
func ServerHandler(s *Server) http.Handler { return s.Handler() }

// ServerClient is a minimal client for the HTTP API.
type ServerClient = server.Client

// WireRequest and WireResult are the HTTP API's request/response items;
// BatchRequest and BatchResponse frame them; StatsResponse is the
// GET /v1/stats body (typed stats plus the ops registry's counters and
// histogram snapshots).
type (
	WireRequest   = server.WireRequest
	WireResult    = server.WireResult
	BatchRequest  = server.BatchRequest
	BatchResponse = server.BatchResponse
	StatsResponse = server.StatsResponse
)

// ---- Request tracing ----
//
// A Tracer attached to ServerConfig.Trace records one small span tree
// per request — admission wait, mailbox queue wait, engine service, and
// one span per billed protocol transition — tied to the caller's trace
// context when one is propagated (Server.DoTraced in process, or the
// traceparent header on POST /v1/batch). Deterministic mode zeroes the
// wall-clock fields so same-seed trace files are byte-identical at any
// shard count and client parallelism. cmd/traceview analyzes the
// resulting JSONL: critical-path decomposition, per-shard queue-wait
// shares, and exact cost reconciliation from spans alone.

// Tracer collects request spans and writes the canonical trace JSONL.
type Tracer = tracing.Tracer

// TraceConfig configures a Tracer (deterministic mode, tail-sampling
// rate, span-buffer bound, and optional incremental span streaming via
// Stream).
type TraceConfig = tracing.Config

// TraceSpan is one record of a trace file.
type TraceSpan = tracing.Span

// TraceSummary is the trace file's final line: the engine's
// authoritative totals at drain.
type TraceSummary = tracing.Summary

// SpanContext identifies one position in one trace.
type SpanContext = tracing.SpanContext

// TraceAnalysis is a parsed trace file: spans, folded per-request
// views, and the summary.
type TraceAnalysis = tracing.Analysis

// TraceRequestView is one request folded out of its span tree.
type TraceRequestView = tracing.RequestView

// NewTracer creates a Tracer.
func NewTracer(cfg TraceConfig) *Tracer { return tracing.New(cfg) }

// ParseTraceparent parses a traceparent-style header into a
// SpanContext.
func ParseTraceparent(h string) (SpanContext, error) { return tracing.ParseTraceparent(h) }

// ParseTrace parses a trace JSONL stream into a TraceAnalysis.
func ParseTrace(r io.Reader) (*TraceAnalysis, error) { return tracing.Parse(r) }
