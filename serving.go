package objalloc

import (
	"net/http"

	"objalloc/internal/server"
)

// ---- Sharded allocation service ----
//
// The server package turns the multi-object directory into a
// long-running service: objects are hashed to independent shards, each
// shard runs its own allocation engine (SA, DA, executed HA clusters,
// or the online adaptive SA/DA controller — ServerEngineAdaptive,
// configured via ServerConfig.Adaptive)
// behind a batched mailbox with admission control, and a graceful drain
// completes every accepted request before shutdown. The objallocd daemon
// (cmd/objallocd) serves this over HTTP; loadgen (cmd/loadgen) replays
// workload streams against it.

// ServerConfig describes the sharded allocation service.
type ServerConfig = server.Config

// Server is the running service.
type Server = server.Server

// ServerResult is one serviced request's outcome.
type ServerResult = server.Result

// ServerStats is the service's operational snapshot.
type ServerStats = server.Stats

// ServerShardStats is one shard's operational snapshot.
type ServerShardStats = server.ShardStats

// ServerEngine selects the per-shard engine.
type ServerEngine = server.Engine

// Server engines.
const (
	ServerEngineDA       = server.EngineDA
	ServerEngineSA       = server.EngineSA
	ServerEngineHA       = server.EngineHA
	ServerEngineAdaptive = server.EngineAdaptive
)

// CoalesceMode controls the service's read coalescing.
type CoalesceMode = server.CoalesceMode

// Coalesce modes.
const (
	CoalesceAuto = server.CoalesceAuto
	CoalesceOn   = server.CoalesceOn
	CoalesceOff  = server.CoalesceOff
)

// Overloaded is the admission-control rejection: the target shard's
// mailbox is full; retry after its RetryAfter hint.
type Overloaded = server.Overloaded

// ErrServerDraining is returned by Server.Do once the graceful drain has
// begun.
var ErrServerDraining = server.ErrDraining

// NewServer starts the sharded allocation service.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ParseServerEngine parses an engine name: "da", "sa", "ha" or
// "adaptive".
func ParseServerEngine(s string) (ServerEngine, error) { return server.ParseEngine(s) }

// ServerHandler returns the service's HTTP API (POST /v1/batch,
// GET /v1/stats, GET /v1/healthz).
func ServerHandler(s *Server) http.Handler { return s.Handler() }

// ServerClient is a minimal client for the HTTP API.
type ServerClient = server.Client

// WireRequest and WireResult are the HTTP API's request/response items;
// BatchRequest and BatchResponse frame them.
type (
	WireRequest   = server.WireRequest
	WireResult    = server.WireResult
	BatchRequest  = server.BatchRequest
	BatchResponse = server.BatchResponse
)
