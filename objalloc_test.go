package objalloc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"objalloc"
)

// The §1.3 worked example: a dynamic strategy beats a static one on the
// schedule r1 r1 r2 w2 r2 r2 r2.
func ExampleRatio() {
	sched := objalloc.MustParseSchedule("r1 r1 r2 w2 r2 r2 r2")
	m := objalloc.SC(0.25, 1.0)
	initial := objalloc.NewSet(0, 1)

	sa, _ := objalloc.Ratio(m, objalloc.StaticFactory, sched, initial, 2)
	da, _ := objalloc.Ratio(m, objalloc.DynamicFactory, sched, initial, 2)
	fmt.Printf("SA pays %.2fx the optimum, DA pays %.2fx\n", sa.Ratio, da.Ratio)
	// Output: SA pays 1.43x the optimum, DA pays 1.10x
}

func ExampleNewDynamic() {
	alg, _ := objalloc.NewDynamic(objalloc.NewSet(0, 1), 2)
	las := objalloc.Run(alg, objalloc.MustParseSchedule("r4 w0 r4"))
	fmt.Println(las)
	// Output: R4{0} w0{0,1} R4{0}
}

func TestFacadeEndToEnd(t *testing.T) {
	sched := objalloc.MustParseSchedule("w2 r4 w3 r1 r2")
	initial := objalloc.NewSet(0, 1)
	m := objalloc.SC(0.3, 1.2)

	optCost, err := objalloc.OptimalCost(m, sched, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := objalloc.Optimal(m, sched, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != optCost {
		t.Errorf("Optimal cost %g != OptimalCost %g", res.Cost, optCost)
	}

	alg, err := objalloc.NewStatic(initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	las := objalloc.Run(alg, sched)
	if got := objalloc.ScheduleCost(m, las, initial); got < optCost {
		t.Errorf("SA cost %g below optimum %g", got, optCost)
	}
}

func TestFacadeBounds(t *testing.T) {
	m := objalloc.SC(0.5, 1.5)
	if got := objalloc.SABound(m); got != 3.0 {
		t.Errorf("SABound = %g", got)
	}
	if got := objalloc.DABound(m); got != 2.5 { // cd > 1: 2+cc
		t.Errorf("DABound = %g", got)
	}
}

func TestFacadeCluster(t *testing.T) {
	c, err := objalloc.NewCluster(4,
		objalloc.WithProtocol(objalloc.ProtocolDA),
		objalloc.WithInitial(objalloc.NewSet(0, 1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Data) != "x" {
		t.Errorf("read %q", v.Data)
	}
}

func TestFacadeHAAndQuorum(t *testing.T) {
	h, err := objalloc.NewHACluster(5, objalloc.WithInitial(objalloc.NewSet(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write(2, []byte("y")); err != nil {
		t.Fatal(err)
	}

	q, err := objalloc.NewQuorumCluster(3, objalloc.WithPreload(true))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Write(0, []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloadsAndSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if s := objalloc.UniformWorkload(rng, 4, 10, 0.5); len(s) != 10 {
		t.Error("uniform workload wrong length")
	}
	if s := objalloc.ZipfWorkload(rng, 4, 10, 0.5, 1.5); len(s) != 10 {
		t.Error("zipf workload wrong length")
	}
	if s := objalloc.MobileTrace(rng, 4, 3, 2); s.Writes() != 3 {
		t.Error("mobile trace writes wrong")
	}
	if s := objalloc.PublishingTrace(rng, 4, 2, objalloc.NewSet(0), 1); s.Writes() != 2 {
		t.Error("publishing trace writes wrong")
	}
	if s := objalloc.AppendOnlyTrace(rng, 4, 2, 1); s.Writes() != 2 {
		t.Error("append-only trace writes wrong")
	}

	battery := objalloc.DefaultBattery()
	battery.RandomSchedules = 1
	battery.RandomLength = 10
	battery.NemesisRounds = 5
	points, err := objalloc.Sweep([]float64{0.5, 1.5}, []float64{0.2}, false, battery)
	if err != nil {
		t.Fatal(err)
	}
	if out := objalloc.RenderGrid(points, true); out == "" {
		t.Error("empty render")
	}
}

func TestFacadeDB(t *testing.T) {
	db, err := objalloc.OpenDB(objalloc.DBConfig{
		Factory: objalloc.DynamicFactory, T: 2, Model: objalloc.SC(0.3, 1.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Write("doc", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Read("doc", 3); err != nil {
		t.Fatal(err)
	}
	if db.TotalCost() <= 0 {
		t.Error("no cost accounted")
	}
}

func TestFacadeStores(t *testing.T) {
	mem := objalloc.NewMemStore()
	if err := mem.Put(objalloc.Version{Seq: 1, Data: []byte("m")}); err != nil {
		t.Fatal(err)
	}
	disk, err := objalloc.OpenDiskStore(t.TempDir()+"/obj.log", objalloc.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if err := disk.Put(objalloc.Version{Seq: 1, Data: []byte("d")}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	if _, err := objalloc.NewConvergent(objalloc.NewSet(0, 1), 2, 16); err != nil {
		t.Fatal(err)
	}
	sched := objalloc.MustParseSchedule("r3 r3 w0")
	for _, f := range []objalloc.Factory{objalloc.ConvergentFactory(8), objalloc.KThresholdFactory(2)} {
		alg, err := f(objalloc.NewSet(0, 1), 2)
		if err != nil {
			t.Fatal(err)
		}
		las := objalloc.Run(alg, sched)
		if err := las.Validate(objalloc.NewSet(0, 1), 2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeOfflineApproximations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sched := objalloc.UniformWorkload(rng, 20, 100, 0.3) // beyond the exact solver
	initial := objalloc.NewSet(0, 1)
	m := objalloc.SC(0.3, 1.2)

	lb := objalloc.OptimalLowerBound(m, sched, 2)
	beam, err := objalloc.OptimalBeam(m, sched, initial, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(lb > 0 && lb <= beam.Cost) {
		t.Errorf("lower bound %g vs beam %g", lb, beam.Cost)
	}
	if err := beam.Alloc.Validate(initial, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHeteroAndLatency(t *testing.T) {
	m := objalloc.ClusteredHetero(6, 3, 0.1, 0.5, 1, 5, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	flat := objalloc.UniformHetero(4, objalloc.SC(0.3, 1.2))
	if err := flat.Validate(); err != nil {
		t.Fatal(err)
	}

	alg, err := objalloc.NewDynamic(objalloc.NewSet(0, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	las := objalloc.Run(alg, objalloc.MustParseSchedule("r3 w0 r3 r3"))
	res, err := objalloc.SimulateLatency(objalloc.LatencyProfile{
		ControlTime: 0.05, DataTime: 1, DiskTime: 0.5, SharedBus: true,
	}, las, objalloc.NewSet(0, 1), objalloc.UniformArrivals(len(las), 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Mean <= 0 || res.BusUtilization() <= 0 {
		t.Errorf("latency result: %+v", res.Summary)
	}
}

func TestFacadeAdvisor(t *testing.T) {
	if objalloc.Advise(objalloc.SC(0.2, 1.5)) != objalloc.AdviseDA {
		t.Error("cd > 1 should advise DA")
	}
	if objalloc.Advise(objalloc.SC(0.1, 0.2)) != objalloc.AdviseSA {
		t.Error("cheap messages should advise SA")
	}
	if objalloc.Advise(objalloc.SC(0.3, 0.8)) != objalloc.AdviseEither {
		t.Error("the gap should advise either")
	}
	rng := rand.New(rand.NewSource(5))
	sample := objalloc.UniformWorkload(rng, 5, 80, 0.2)
	adv, err := objalloc.AdviseForWorkload(objalloc.SC(0.3, 0.8), sample, objalloc.NewSet(0, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best != "SA" && adv.Best != "DA" {
		t.Errorf("best = %q", adv.Best)
	}
}

// Advising an algorithm for a mobile deployment straight from the figures.
func ExampleAdvise() {
	fmt.Println(objalloc.Advise(objalloc.MC(0.2, 1.0)))
	fmt.Println(objalloc.Advise(objalloc.SC(0.1, 0.2)))
	// Output:
	// DA
	// SA
}

// Running the executed DA protocol and pricing the traffic it generated.
func ExampleNewCluster() {
	c, _ := objalloc.NewCluster(4,
		objalloc.WithProtocol(objalloc.ProtocolDA),
		objalloc.WithInitial(objalloc.NewSet(0, 1)),
	)
	defer c.Close()
	c.Write(2, []byte("v2"))
	c.Read(3) // saving-read: 3 joins the allocation scheme
	fmt.Println(c.Counts(), c.Scheme())
	// Output: 2cc+2cd+4io {0,2,3}
}

func TestFacadeFeedAndTrace(t *testing.T) {
	f, err := objalloc.OpenFeed(objalloc.FeedConfig{Stations: 4, T: 2, Policy: objalloc.TemporaryOrders})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Publish(1, []byte("img")); err != nil {
		t.Fatal(err)
	}
	data, seq, err := f.Latest(3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || string(data) != "img" {
		t.Errorf("latest = %d %q", seq, data)
	}

	rec, err := objalloc.CaptureTrace(objalloc.ProtocolSA, 4, 2, objalloc.NewSet(0, 1),
		objalloc.MustParseSchedule("w0 r3 r3"))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/run.json"
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := objalloc.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Replay(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCacheManager(t *testing.T) {
	m, err := objalloc.NewCacheManager(objalloc.CacheConfig{
		N: 4, Capacity: 2, Replacement: objalloc.CacheLRU, Model: objalloc.SC(0.3, 1.2),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Read("a", 2)
	m.Read("b", 2)
	m.Read("c", 2) // evicts a
	if m.Evictions() != 1 {
		t.Errorf("evictions = %d", m.Evictions())
	}
	if m.Cost() <= 0 {
		t.Error("no cost accounted")
	}
	_ = objalloc.CacheMRU
}

func TestFacadeSearchShrinkCrossover(t *testing.T) {
	m := objalloc.SC(0.4, 1.1)
	res, err := objalloc.SearchWorstCase(objalloc.SearchConfig{
		Model: m, Factory: objalloc.StaticFactory,
		N: 4, T: 2, Length: 10, Restarts: 2, Steps: 60, Seed: 3, Anneal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Errorf("search ratio = %g", res.Ratio)
	}
	small, meas, err := objalloc.ShrinkWitness(m, objalloc.StaticFactory, res.Schedule, objalloc.NewSet(0, 1), 2, res.Ratio)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Ratio < res.Ratio-1e-9 || len(small) > len(res.Schedule) {
		t.Errorf("shrink went backwards: %d reqs ratio %g", len(small), meas.Ratio)
	}

	battery := objalloc.DefaultBattery()
	battery.RandomSchedules, battery.RandomLength, battery.NemesisRounds = 1, 12, 10
	cr, err := objalloc.Crossover(0.2, 2.0, 6, battery)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.DAEverywhere && (cr.CD <= 0.2 || cr.CD >= 2.0) {
		t.Errorf("crossover = %+v", cr)
	}

	// Closed-loop latency through the facade.
	alg, _ := objalloc.NewStatic(objalloc.NewSet(0, 1), 2)
	las := objalloc.Run(alg, objalloc.MustParseSchedule("r3 r4 w0 r3"))
	lr, err := objalloc.SimulateLatencyClosedLoop(objalloc.LatencyProfile{DataTime: 1, DiskTime: 0.5}, las, objalloc.NewSet(0, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Summary.Mean <= 0 {
		t.Error("closed-loop mean not positive")
	}
}

func TestFacadeTopologyAwareDAAndFit(t *testing.T) {
	hm := objalloc.ClusteredHetero(6, 3, 0.05, 0.25, 0.8, 4.0, 1)
	alg, err := objalloc.TopologyAwareDynamicFactory(hm)(objalloc.NewSet(0, 3, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	st := alg.Step(objalloc.R(4)) // cluster-B reader served by F member 3
	if st.Exec != objalloc.NewSet(3) {
		t.Errorf("aware DA served from %v", st.Exec)
	}

	fit, err := objalloc.FitAsymptotic(objalloc.SC(0.4, 1.1), objalloc.StaticFactory,
		func(k int) objalloc.Schedule {
			var s objalloc.Schedule
			for i := 0; i < k; i++ {
				s = append(s, objalloc.R(5))
			}
			return s
		},
		[]int{5, 10, 20}, objalloc.NewSet(0, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 2.49 || fit.Alpha > 2.51 {
		t.Errorf("fitted alpha = %g, want 2.5", fit.Alpha)
	}
}

// ExampleSweep regenerates a miniature Figure 1.
func ExampleSweep() {
	battery := objalloc.DefaultBattery()
	battery.RandomSchedules, battery.RandomLength, battery.NemesisRounds = 1, 12, 20
	points, _ := objalloc.Sweep([]float64{0.2, 1.5}, []float64{0.1}, false, battery)
	for _, p := range points {
		fmt.Printf("cc=%.1f cd=%.1f analytic=%v\n", p.CC, p.CD, p.Analytic)
	}
	// Output:
	// cc=0.1 cd=0.2 analytic=SA
	// cc=0.1 cd=1.5 analytic=DA
}

// TestGrandTour exercises the whole public surface end to end in one
// miniature scenario: generate a workload, pick an algorithm with the
// advisor, run it analytically and on the executed cluster, check the costs
// agree, survive a failure, and reproduce a figure cell.
func TestGrandTour(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	m := objalloc.SC(0.2, 1.5)
	initial := objalloc.NewSet(0, 1)
	// Hot readers outside the initial scheme: the classic DA-favorable
	// pattern (remote reads that repeat until the next write).
	sample := func() objalloc.Schedule {
		var s objalloc.Schedule
		for i := 0; i < 30; i++ {
			s = append(s, objalloc.W(objalloc.ProcessorID(rng.Intn(2))))
			for r := 0; r < 4; r++ {
				s = append(s, objalloc.R(objalloc.ProcessorID(4+rng.Intn(2))))
			}
		}
		return s
	}()

	// 1. Advice: cd > 1 and a read-heavy sample — both layers say DA.
	if objalloc.Advise(m) != objalloc.AdviseDA {
		t.Fatal("analytic advice should be DA at cd > 1")
	}
	adv, err := objalloc.AdviseForWorkload(m, sample, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Best != "DA" {
		t.Fatalf("empirical advice = %q", adv.Best)
	}

	// 2. Analytic run, bound check, optimal comparison.
	alg, err := objalloc.NewDynamic(initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	las := objalloc.Run(alg, sample)
	if err := las.Validate(initial, 2); err != nil {
		t.Fatal(err)
	}
	analyticCost := objalloc.ScheduleCost(m, las, initial)
	meas, err := objalloc.Ratio(m, objalloc.DynamicFactory, sample, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Ratio > objalloc.DABound(m) {
		t.Fatalf("ratio %.3f above the paper bound", meas.Ratio)
	}

	// 3. Executed run matches the analytic cost exactly.
	cluster, err := objalloc.NewCluster(6,
		objalloc.WithProtocol(objalloc.ProtocolDA),
		objalloc.WithInitial(initial),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(sample); err != nil {
		cluster.Close()
		t.Fatal(err)
	}
	executedCost := cluster.Cost(m)
	cluster.Close()
	if diff := executedCost - analyticCost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("executed %.4f != analytic %.4f", executedCost, analyticCost)
	}

	// 4. The same deployment survives an F failure.
	h, err := objalloc.NewHACluster(6, objalloc.WithInitial(initial))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Write(2, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := h.Crash(0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(3); err != nil {
		t.Fatalf("read during outage: %v", err)
	}
	if err := h.Restart(0); err != nil {
		t.Fatal(err)
	}

	// 5. The figure cell this deployment sits in: DA superior.
	battery := objalloc.DefaultBattery()
	battery.RandomSchedules, battery.RandomLength, battery.NemesisRounds = 2, 20, 30
	points, err := objalloc.Sweep([]float64{1.5}, []float64{0.2}, false, battery)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Empirical.String() != "DA" {
		t.Fatalf("figure cell = %v", points[0].Empirical)
	}
}
