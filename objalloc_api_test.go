package objalloc_test

import (
	"context"
	"reflect"
	"testing"

	"objalloc"
)

// smallBattery is a fast battery for equivalence tests.
func smallBattery() objalloc.BatteryConfig {
	b := objalloc.DefaultBattery()
	b.RandomSchedules, b.RandomLength, b.NemesisRounds = 1, 10, 8
	return b
}

// The deprecated positional wrappers must be pure delegations: on a fixed
// seed their results are identical — field for field — to calling the
// *Context form with the equivalent spec.

func TestWrapperEquivalenceSweep(t *testing.T) {
	cds, ccs := []float64{0.5, 1.5}, []float64{0.2}
	battery := smallBattery()
	old, err := objalloc.Sweep(cds, ccs, false, battery)
	if err != nil {
		t.Fatal(err)
	}
	spec := objalloc.SweepSpec{CDs: cds, CCs: ccs, Mobile: false, Battery: battery}
	ctx, err := objalloc.SweepContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, ctx) {
		t.Fatalf("Sweep diverges from SweepContext:\n%+v\nvs\n%+v", old, ctx)
	}
}

func TestWrapperEquivalenceSearch(t *testing.T) {
	cfg := objalloc.SearchConfig{
		Model: objalloc.SC(0.25, 1), Factory: objalloc.DynamicFactory,
		N: 4, T: 2, Length: 8, Restarts: 3, Steps: 20, Seed: 7,
	}
	old, err := objalloc.SearchWorstCase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := objalloc.SearchWorstCaseContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(old, viaCtx) {
		t.Fatalf("SearchWorstCase diverges:\n%+v\nvs\n%+v", old, viaCtx)
	}
}

func TestWrapperEquivalenceCrossover(t *testing.T) {
	battery := smallBattery()
	old, err := objalloc.Crossover(0.2, 2.0, 4, battery)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := objalloc.CrossoverContext(context.Background(),
		objalloc.CrossoverSpec{CC: 0.2, CDMax: 2.0, Iters: 4, Battery: battery})
	if err != nil {
		t.Fatal(err)
	}
	if old != viaCtx {
		t.Fatalf("Crossover diverges: %+v vs %+v", old, viaCtx)
	}
}

func TestWrapperEquivalenceFit(t *testing.T) {
	family := func(k int) objalloc.Schedule {
		var s objalloc.Schedule
		s = append(s, objalloc.W(0))
		for i := 0; i < k; i++ {
			s = append(s, objalloc.R(1))
		}
		return s
	}
	m := objalloc.SC(0.25, 1)
	ks := []int{2, 4, 8}
	initial := objalloc.NewSet(0, 1)
	old, err := objalloc.FitAsymptotic(m, objalloc.StaticFactory, family, ks, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := objalloc.FitAsymptoticContext(context.Background(), objalloc.FitSpec{
		Model: m, Factory: objalloc.StaticFactory, Family: family, Ks: ks, Initial: initial, T: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if old != viaCtx {
		t.Fatalf("FitAsymptotic diverges: %+v vs %+v", old, viaCtx)
	}
}

func TestWrapperEquivalenceOptimal(t *testing.T) {
	m := objalloc.SC(0.25, 1)
	sched := objalloc.MustParseSchedule("w1 r2 r3 w0 r1")
	initial := objalloc.NewSet(0, 1)
	oldCost, err := objalloc.OptimalCost(m, sched, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctxCost, err := objalloc.OptimalCostContext(context.Background(), m, sched, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if oldCost != ctxCost {
		t.Fatalf("OptimalCost %v != OptimalCostContext %v", oldCost, ctxCost)
	}
	oldRes, err := objalloc.Optimal(m, sched, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := objalloc.OptimalContext(context.Background(), m, sched, initial, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldRes, ctxRes) {
		t.Fatalf("Optimal diverges: %+v vs %+v", oldRes, ctxRes)
	}
	oldBeam, err := objalloc.OptimalBeam(m, sched, initial, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctxBeam, err := objalloc.OptimalBeamContext(context.Background(), m, sched, initial, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldBeam, ctxBeam) {
		t.Fatalf("OptimalBeam diverges: %+v vs %+v", oldBeam, ctxBeam)
	}
}

// Every evaluation spec shares the Normalize contract, and the entry
// points surface its validation errors.
func TestSpecNormalize(t *testing.T) {
	specs := []objalloc.Spec{
		&objalloc.SweepSpec{},
		&objalloc.SearchConfig{},
		&objalloc.CrossoverSpec{},
		&objalloc.FitSpec{},
	}
	for i, s := range specs {
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d: zero value normalized without error", i)
		}
	}
	good := &objalloc.SearchConfig{
		Model: objalloc.SC(0.25, 1), Factory: objalloc.DynamicFactory,
		N: 4, T: 2, Length: 8,
	}
	if err := good.Normalize(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.Restarts != 1 || good.InitialTemp == 0 || good.Cooling == 0 {
		t.Fatalf("defaults not resolved: %+v", good)
	}
	if _, err := objalloc.SearchWorstCase(objalloc.SearchConfig{}); err == nil {
		t.Fatal("entry point did not surface the Normalize error")
	}
}

// A cluster built through functional options behaves identically to one
// built from the equivalent config struct.
func TestClusterOptionsEquivalence(t *testing.T) {
	sched := objalloc.MustParseSchedule("w2 r4 w3 r1 r2 w0 r3")
	build := func(c *objalloc.Cluster, err error) (objalloc.Counts, objalloc.Set) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Run(sched); err != nil {
			t.Fatal(err)
		}
		return c.Counts(), c.Scheme()
	}
	optCounts, optScheme := build(objalloc.NewCluster(5,
		objalloc.WithProtocol(objalloc.ProtocolDA),
		objalloc.WithAvailability(2),
		objalloc.WithInitial(objalloc.NewSet(0, 1)),
	))
	cfgCounts, cfgScheme := build(objalloc.NewClusterFromConfig(objalloc.ClusterConfig{
		N: 5, T: 2, Protocol: objalloc.ProtocolDA, Initial: objalloc.NewSet(0, 1),
	}))
	if optCounts != cfgCounts || optScheme != cfgScheme {
		t.Fatalf("options build diverges: %v %v vs %v %v", optCounts, optScheme, cfgCounts, cfgScheme)
	}
}

func TestClusterOptionsFaultSeed(t *testing.T) {
	run := func(opts ...objalloc.ClusterOption) objalloc.Counts {
		t.Helper()
		c, err := objalloc.NewCluster(4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 10; i++ {
			if _, err := c.Write(objalloc.ProcessorID(i%4), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		return c.Counts()
	}
	base := []objalloc.ClusterOption{
		objalloc.WithInitial(objalloc.FullSet(2)),
		objalloc.WithFaults(objalloc.FaultPlan{Seed: 1, Loss: 0.3}),
	}
	a := run(base...)
	b := run(append(base, objalloc.WithSeed(1))...) // same seed, same run
	if a != b {
		t.Fatalf("WithSeed(1) changed a Seed-1 plan: %v vs %v", a, b)
	}
}

// The serving facade: build, drive and drain a sharded server through
// the public objalloc surface.
func TestServerFacade(t *testing.T) {
	s, err := objalloc.NewServer(objalloc.ServerConfig{
		Shards: 2, N: 4, T: 2, Model: objalloc.MC(0.25, 1), Coalesce: objalloc.CoalesceAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Do("obj", objalloc.R(1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	st := s.Stats()
	if st.Accepted != 20 || st.Complete != 20 {
		t.Fatalf("accepted %d completed %d, want 20/20", st.Accepted, st.Complete)
	}
	if st.Coalesce == 0 {
		t.Fatal("repeat mobile reads were not coalesced")
	}
	if _, err := s.Do("obj", objalloc.R(1)); err != objalloc.ErrServerDraining {
		t.Fatalf("post-drain error = %v, want ErrServerDraining", err)
	}
	if eng, err := objalloc.ParseServerEngine("ha"); err != nil || eng != objalloc.ServerEngineHA {
		t.Fatalf("ParseServerEngine = %v, %v", eng, err)
	}
}
